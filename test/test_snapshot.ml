(* Tests for read-only transactions with start-time timestamps (the
   general form of hybrid atomicity, paper §7.1): snapshot reads are
   consistent (serializable at the snapshot timestamp), lock-free, and
   never disturb writers. *)

module A = Adt.Account
module Q = Adt.Fifo_queue
module AObj = Runtime.Atomic_obj.Make (A)
module QObj = Runtime.Atomic_obj.Make (Q)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- unit semantics ---------------- *)

let test_read_at_sees_prefix () =
  let mgr = Runtime.Manager.create () in
  let acc = AObj.create ~conflict:A.conflict_hybrid () in
  Runtime.Manager.run mgr (fun txn -> ignore (AObj.invoke acc txn (A.Credit 10)));
  (* Pin the snapshot before more commits arrive — an unpinned snapshot
     ages out as the horizon folds (tested separately below). *)
  let src = AObj.snapshot_source acc in
  let reader = Model.Txn.make (-4141) in
  let s1 = Runtime.Manager.stable_time mgr in
  src.Runtime.Snapshot.pin reader s1;
  Runtime.Manager.run mgr (fun txn -> ignore (AObj.invoke acc txn (A.Credit 5)));
  (* The snapshot at s1 must not see the second credit.  Balance is only
     observable through operations; a Debit 11 overdrafts at balance 10
     but succeeds at 15. *)
  (match AObj.read_at acc ~at:s1 (A.Debit 11) with
  | Some A.Overdraft -> ()
  | _ -> Alcotest.fail "snapshot should see balance 10");
  let s2 = Runtime.Manager.stable_time mgr in
  (match AObj.read_at acc ~at:s2 (A.Debit 11) with
  | Some A.Ok -> ()
  | _ -> Alcotest.fail "current snapshot should see balance 15");
  src.Runtime.Snapshot.unpin reader

let test_read_at_has_no_side_effects () =
  let mgr = Runtime.Manager.create () in
  let acc = AObj.create ~conflict:A.conflict_hybrid () in
  Runtime.Manager.run mgr (fun txn -> ignore (AObj.invoke acc txn (A.Credit 10)));
  let s = Runtime.Manager.stable_time mgr in
  (match AObj.read_at acc ~at:s (A.Debit 4) with
  | Some A.Ok -> ()
  | _ -> Alcotest.fail "debit observable");
  (* the read was not an update: balance unchanged *)
  match AObj.committed_states acc with
  | [ 10 ] -> ()
  | _ -> Alcotest.fail "snapshot read must not modify the object"

let test_read_at_partial_op () =
  let mgr = Runtime.Manager.create () in
  let q = QObj.create ~conflict:Q.conflict_hybrid () in
  let s = Runtime.Manager.stable_time mgr in
  check_bool "deq on empty snapshot" true (QObj.read_at q ~at:s Q.Deq = None)

let test_unavailable_after_folding () =
  let mgr = Runtime.Manager.create () in
  let acc = AObj.create ~conflict:A.conflict_hybrid () in
  Runtime.Manager.run mgr (fun txn -> ignore (AObj.invoke acc txn (A.Credit 1)));
  let old = Runtime.Manager.stable_time mgr in
  (* more committed transactions fold past [old] (no pins held) *)
  for _ = 1 to 5 do
    Runtime.Manager.run mgr (fun txn -> ignore (AObj.invoke acc txn (A.Credit 1)))
  done;
  Alcotest.check_raises "folded past the snapshot" Runtime.Snapshot.Unavailable
    (fun () -> ignore (AObj.read_at acc ~at:old (A.Credit 1)))

let test_pin_blocks_folding () =
  let mgr = Runtime.Manager.create () in
  let acc = AObj.create ~conflict:A.conflict_hybrid () in
  Runtime.Manager.run mgr (fun txn -> ignore (AObj.invoke acc txn (A.Credit 1)));
  let src = AObj.snapshot_source acc in
  let reader = Model.Txn.make (-4242) in
  let at = Runtime.Manager.stable_time mgr in
  src.Runtime.Snapshot.pin reader at;
  for _ = 1 to 5 do
    Runtime.Manager.run mgr (fun txn -> ignore (AObj.invoke acc txn (A.Credit 1)))
  done;
  (* still readable at [at] thanks to the pin *)
  (match AObj.read_at acc ~at (A.Debit 2) with
  | Some A.Overdraft -> () (* balance as of [at] is 1 *)
  | _ -> Alcotest.fail "pinned snapshot must still see balance 1");
  src.Runtime.Snapshot.unpin reader;
  (* after unpinning, the horizon advances and the old snapshot ages out *)
  Runtime.Manager.run mgr (fun txn -> ignore (AObj.invoke acc txn (A.Credit 1)));
  Alcotest.check_raises "aged out" Runtime.Snapshot.Unavailable (fun () ->
      ignore (AObj.read_at acc ~at (A.Debit 2)))

let test_stable_time () =
  let mgr = Runtime.Manager.create () in
  check_int "initially 0" 0 (Runtime.Manager.stable_time mgr);
  Runtime.Manager.run mgr (fun _ -> ());
  check_int "after one commit" 1 (Runtime.Manager.stable_time mgr);
  check_int "equals current when idle" (Runtime.Manager.current_time mgr)
    (Runtime.Manager.stable_time mgr)

(* ---------------- Snapshot.read orchestration ---------------- *)

let test_snapshot_read_consistent_sum () =
  (* The classic test: transfers preserve the total; a consistent
     snapshot must always observe the exact invariant even while
     transfers race on other domains. *)
  let mgr = Runtime.Manager.create () in
  let n = 4 in
  let opening = 100 in
  let accounts =
    Array.init n (fun i ->
        AObj.create ~name:(Printf.sprintf "a%d" i) ~conflict:A.conflict_hybrid ())
  in
  Array.iter
    (fun a -> Runtime.Manager.run mgr (fun txn -> ignore (AObj.invoke a txn (A.Credit opening))))
    accounts;
  let stop = Atomic.make false in
  let transferrers =
    List.init 2 (fun d ->
        Domain.spawn (fun () ->
            let k = ref 0 in
            while not (Atomic.get stop) do
              incr k;
              let src = (d + !k) mod n and amt = 1 + (!k mod 7) in
              let dst = (src + 1) mod n in
              Runtime.Manager.run mgr (fun txn ->
                  match AObj.invoke accounts.(src) txn (A.Debit amt) with
                  | A.Ok -> ignore (AObj.invoke accounts.(dst) txn (A.Credit amt))
                  | A.Overdraft -> ())
            done))
  in
  let sources = Array.to_list (Array.map AObj.snapshot_source accounts) in
  (* Audit concurrently many times; each audit must see an exact total.
     Balances are observed via binary search with overdraft probes. *)
  let observed_balance acc ~at =
    (* find b such that Debit b is Ok and Debit (b+1) overdrafts *)
    let rec search lo hi =
      (* invariant: Debit lo is Ok (or lo = 0), Debit hi overdrafts *)
      if lo + 1 >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        match AObj.read_at acc ~at (A.Debit mid) with
        | Some A.Ok -> search mid hi
        | Some A.Overdraft -> search lo mid
        | None -> Alcotest.fail "debit is total"
    in
    match AObj.read_at acc ~at (A.Debit 1) with
    | Some A.Overdraft -> 0
    | Some A.Ok -> search 1 (n * opening * 2)
    | None -> Alcotest.fail "debit is total"
  in
  for _ = 1 to 25 do
    let total =
      Runtime.Snapshot.read mgr ~sources (fun ~at ->
          Array.fold_left (fun acc a -> acc + observed_balance a ~at) 0 accounts)
    in
    check_int "conserved total" (n * opening) total
  done;
  Atomic.set stop true;
  List.iter Domain.join transferrers

let test_readers_do_not_block_writers () =
  let mgr = Runtime.Manager.create () in
  let acc = AObj.create ~conflict:A.conflict_hybrid () in
  Runtime.Manager.run mgr (fun txn -> ignore (AObj.invoke acc txn (A.Credit 100)));
  let sources = [ AObj.snapshot_source acc ] in
  Runtime.Snapshot.read mgr ~sources (fun ~at ->
      (* while the snapshot is pinned, writers proceed without conflicts *)
      for _ = 1 to 10 do
        Runtime.Manager.run mgr (fun txn -> ignore (AObj.invoke acc txn (A.Credit 1)))
      done;
      (* and the pinned snapshot still reads its own time *)
      match AObj.read_at acc ~at (A.Debit 101) with
      | Some A.Overdraft -> ()
      | _ -> Alcotest.fail "snapshot isolation");
  let s = AObj.stats acc in
  check_int "writers never conflicted" 0 s.AObj.conflicts;
  match AObj.committed_states acc with
  | [ 110 ] -> ()
  | _ -> Alcotest.fail "writes all applied"

let test_snapshot_read_queue () =
  let mgr = Runtime.Manager.create () in
  let q = QObj.create ~conflict:Q.conflict_hybrid () in
  Runtime.Manager.run mgr (fun txn ->
      ignore (QObj.invoke q txn (Q.Enq 7));
      ignore (QObj.invoke q txn (Q.Enq 8)));
  let front =
    Runtime.Snapshot.read mgr ~sources:[ QObj.snapshot_source q ] (fun ~at ->
        QObj.read_at q ~at Q.Deq)
  in
  (match front with
  | Some (Q.Val 7) -> ()
  | _ -> Alcotest.fail "snapshot front");
  (* the read dequeued nothing *)
  match QObj.committed_states q with
  | [ [ 7; 8 ] ] -> ()
  | _ -> Alcotest.fail "queue untouched by snapshot read"

let () =
  Alcotest.run "snapshot"
    [
      ( "unit",
        [
          Alcotest.test_case "reads the prefix at ts" `Quick test_read_at_sees_prefix;
          Alcotest.test_case "no side effects" `Quick test_read_at_has_no_side_effects;
          Alcotest.test_case "partial op yields None" `Quick test_read_at_partial_op;
          Alcotest.test_case "unavailable after folding" `Quick
            test_unavailable_after_folding;
          Alcotest.test_case "pin blocks folding" `Quick test_pin_blocks_folding;
          Alcotest.test_case "stable_time" `Quick test_stable_time;
        ] );
      ( "read-only-transactions",
        [
          Alcotest.test_case "consistent sum under racing transfers" `Quick
            test_snapshot_read_consistent_sum;
          Alcotest.test_case "readers do not block writers" `Quick
            test_readers_do_not_block_writers;
          Alcotest.test_case "queue snapshot" `Quick test_snapshot_read_queue;
        ] );
    ]
