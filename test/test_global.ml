(* Theorem 1 (local atomicity): hybrid atomicity is a local property —
   if every object in a system is hybrid atomic, every system history is
   atomic.  The mechanism: commit timestamps come from one shared
   totally-ordered set, so each object's local serialization order is a
   restriction of the SAME global order.

   This test runs multi-object transactions (a queue, an account and a
   directory touched in one transaction) on real domains, records every
   object's local history, and then checks:
   1. each local history is well-formed and respects the timestamp
      constraint (the protocol's per-object obligations);
   2. each local history is hybrid atomic (the local property);
   3. the single global commit-timestamp order serializes EVERY object
      simultaneously — global atomicity witnessed by one order, which is
      exactly Theorem 1's conclusion. *)

module Q = Adt.Fifo_queue
module A = Adt.Account
module D = Adt.Directory
module QObj = Runtime.Atomic_obj.Make (Q)
module AObj = Runtime.Atomic_obj.Make (A)
module DObj = Runtime.Atomic_obj.Make (D)
module HQ = Model.History.Make (Q)
module HA = Model.History.Make (A)
module HD = Model.History.Make (D)
module AtQ = Model.Atomicity.Make (Q)
module AtA = Model.Atomicity.Make (A)
module AtD = Model.Atomicity.Make (D)

let check_bool = Alcotest.(check bool)

(* Collect the global timestamp order over committed transactions from
   the per-object histories (timestamps are globally unique). *)
let global_ts_order histories_ts =
  (* histories_ts: (txn, ts) pairs possibly repeated across objects *)
  histories_ts
  |> List.sort_uniq (fun (t1, _) (t2, _) -> Model.Txn.compare t1 t2)
  |> List.sort (fun (_, ts1) (_, ts2) -> Model.Timestamp.compare ts1 ts2)
  |> List.map fst

let committed_q h =
  List.filter_map
    (fun t -> Option.map (fun ts -> (t, ts)) (HQ.timestamp_of h t))
    (HQ.committed h)

let committed_a h =
  List.filter_map
    (fun t -> Option.map (fun ts -> (t, ts)) (HA.timestamp_of h t))
    (HA.committed h)

let committed_d h =
  List.filter_map
    (fun t -> Option.map (fun ts -> (t, ts)) (HD.timestamp_of h t))
    (HD.committed h)

let run_workload () =
  let mgr = Runtime.Manager.create () in
  let q = QObj.create ~record:true ~conflict:Q.conflict_hybrid () in
  let acc = AObj.create ~record:true ~conflict:A.conflict_hybrid () in
  let dir = DObj.create ~record:true ~conflict:D.conflict_hybrid () in
  (* seed the account *)
  Runtime.Manager.run mgr (fun txn -> ignore (AObj.invoke acc txn (A.Credit 100)));
  let worker d =
    Domain.spawn (fun () ->
        for k = 0 to 11 do
          Runtime.Manager.run mgr (fun txn ->
              (* an order-processing transaction touching all three *)
              ignore (QObj.invoke q txn (Q.Enq ((10 * d) + k)));
              ignore (AObj.invoke acc txn (A.Credit (1 + (k mod 3))));
              if k mod 4 = 0 then ignore (AObj.invoke acc txn (A.Debit 1));
              ignore (DObj.invoke dir txn (D.Insert ((10 * d) + k))))
        done)
  in
  List.iter Domain.join (List.init 3 worker);
  (q, acc, dir)

let test_theorem_1 () =
  let q, acc, dir = run_workload () in
  let hq = QObj.history q in
  let ha = AObj.history acc in
  let hd = DObj.history dir in
  (* 1. local well-formedness + timestamp constraint *)
  check_bool "queue wf" true (match HQ.well_formed hq with Ok () -> true | _ -> false);
  check_bool "account wf" true (match HA.well_formed ha with Ok () -> true | _ -> false);
  check_bool "dir wf" true (match HD.well_formed hd with Ok () -> true | _ -> false);
  check_bool "queue ts constraint" true (HQ.timestamps_respect_precedes hq);
  check_bool "account ts constraint" true (HA.timestamps_respect_precedes ha);
  check_bool "dir ts constraint" true (HD.timestamps_respect_precedes hd);
  (* 2. local hybrid atomicity *)
  check_bool "queue hybrid atomic" true (AtQ.hybrid_atomic hq);
  check_bool "account hybrid atomic" true (AtA.hybrid_atomic ha);
  check_bool "dir hybrid atomic" true (AtD.hybrid_atomic hd);
  (* 3. global atomicity: ONE order — the global timestamp order —
     serializes every object. *)
  let pairs = committed_q hq @ committed_a ha @ committed_d hd in
  let order = global_ts_order pairs in
  let restrict_order committed =
    List.filter (fun t -> List.exists (Model.Txn.equal t) committed) order
  in
  check_bool "queue serializable in the global order" true
    (AtQ.serializable_in (HQ.permanent hq) (restrict_order (HQ.committed hq)));
  check_bool "account serializable in the global order" true
    (AtA.serializable_in (HA.permanent ha) (restrict_order (HA.committed ha)));
  check_bool "dir serializable in the global order" true
    (AtD.serializable_in (HD.permanent hd) (restrict_order (HD.committed hd)))

let test_timestamps_agree_across_objects () =
  let q, acc, dir = run_workload () in
  let hq = QObj.history q in
  let ha = AObj.history acc in
  let hd = DObj.history dir in
  (* A transaction committed at several objects carries the same
     timestamp everywhere (atomic commitment, Section 2). *)
  let tables = [ committed_q hq; committed_a ha; committed_d hd ] in
  let consistent =
    List.for_all
      (fun t1 ->
        List.for_all
          (fun t2 ->
            List.for_all
              (fun (txn1, ts1) ->
                List.for_all
                  (fun (txn2, ts2) -> (not (Model.Txn.equal txn1 txn2)) || ts1 = ts2)
                  t2)
              t1)
          tables)
      tables
  in
  check_bool "same timestamp at every object" true consistent

let test_no_partial_commits () =
  (* A transaction that aborts after touching two objects must be absent
     from both committed sets. *)
  let mgr = Runtime.Manager.create () in
  let q = QObj.create ~record:true ~conflict:Q.conflict_hybrid () in
  let acc = AObj.create ~record:true ~conflict:A.conflict_hybrid () in
  (match
     Runtime.Manager.run_once mgr (fun txn ->
         ignore (QObj.invoke q txn (Q.Enq 1));
         ignore (AObj.invoke acc txn (A.Credit 5));
         Runtime.Manager.abort_in ())
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected abort");
  check_bool "queue has no committed txns" true (HQ.committed (QObj.history q) = []);
  check_bool "account has no committed txns" true (HA.committed (AObj.history acc) = []);
  check_bool "both saw the abort" true
    (HQ.aborted (QObj.history q) <> [] && HA.aborted (AObj.history acc) <> [])

let () =
  Alcotest.run "global_atomicity"
    [
      ( "theorem-1",
        [
          Alcotest.test_case "one global order serializes all objects" `Quick
            test_theorem_1;
          Alcotest.test_case "timestamps agree across objects" `Quick
            test_timestamps_agree_across_objects;
          Alcotest.test_case "atomic commitment" `Quick test_no_partial_commits;
        ] );
    ]
