(* Unit and property tests for Util.Combinat, the combinatorial engine
   underneath the brute-force atomicity checkers. *)

module C = Util.Combinat

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let rec factorial n = if n <= 1 then 1 else n * factorial (n - 1)

let test_permutations_counts () =
  List.iter
    (fun n ->
      let xs = List.init n Fun.id in
      check_int (Printf.sprintf "n=%d" n) (factorial n) (List.length (C.permutations xs)))
    [ 0; 1; 2; 3; 4; 5 ]

let test_permutations_distinct () =
  let perms = C.permutations [ 1; 2; 3; 4 ] in
  check_int "all distinct" (List.length perms) (List.length (List.sort_uniq compare perms))

let test_permutations_are_permutations () =
  List.iter
    (fun p -> check_bool "sorted equals original" true (List.sort compare p = [ 1; 2; 3 ]))
    (C.permutations [ 3; 1; 2 ])

let test_subsets () =
  check_int "2^4" 16 (List.length (C.subsets [ 1; 2; 3; 4 ]));
  check_int "2^0" 1 (List.length (C.subsets []));
  check_bool "order preserved" true
    (List.for_all (fun s -> s = List.sort compare s) (C.subsets [ 1; 2; 3; 4 ]))

let test_sequences () =
  check_int "3^2" 9 (List.length (C.sequences [ 1; 2; 3 ] 2));
  check_int "len 0" 1 (List.length (C.sequences [ 1; 2 ] 0));
  check_int "upto 3 over 2" (1 + 2 + 4 + 8) (List.length (C.sequences_upto [ 1; 2 ] 3))

let test_sequences_upto_shortest_first () =
  let seqs = C.sequences_upto [ 1; 2 ] 3 in
  let lengths = List.map List.length seqs in
  check_bool "non-decreasing lengths" true (List.sort compare lengths = lengths)

let test_cartesian () =
  check_int "3x2" 6 (List.length (C.cartesian [ 1; 2; 3 ] [ 'a'; 'b' ]));
  check_int "pairs incl diagonal" 9 (List.length (C.pairs [ 1; 2; 3 ]))

let test_interleavings () =
  (* C(m+n, m) interleavings *)
  check_int "C(4,2)" 6 (List.length (C.interleavings [ 1; 2 ] [ 3; 4 ]));
  check_int "empty right" 1 (List.length (C.interleavings [ 1; 2 ] []));
  List.iter
    (fun m ->
      check_bool "subsequences preserved" true
        (C.is_subsequence ~eq:Int.equal [ 1; 2 ] m
        && C.is_subsequence ~eq:Int.equal [ 3; 4 ] m))
    (C.interleavings [ 1; 2 ] [ 3; 4 ])

let test_topological_orders_total () =
  (* A chain 1 < 2 < 3 has exactly one linearization. *)
  let orders = C.topological_orders [ 3; 1; 2 ] (fun a b -> a < b) in
  Alcotest.(check (list (list int))) "chain" [ [ 1; 2; 3 ] ] orders

let test_topological_orders_empty_relation () =
  let orders = C.topological_orders [ 1; 2; 3 ] (fun _ _ -> false) in
  check_int "all 3! orders" 6 (List.length orders)

let test_topological_orders_partial () =
  (* 1 < 2, 1 < 3, 2 and 3 unrelated: two orders. *)
  let lt a b = a = 1 && (b = 2 || b = 3) in
  let orders = C.topological_orders [ 2; 3; 1 ] lt in
  check_int "two linearizations" 2 (List.length orders);
  check_bool "all start with 1" true (List.for_all (fun o -> List.hd o = 1) orders)

let test_topological_orders_cyclic () =
  (* A cycle admits no linearization. *)
  let lt a b = (a = 1 && b = 2) || (a = 2 && b = 1) in
  check_int "no orders" 0 (List.length (C.topological_orders [ 1; 2 ] lt))

let test_topological_orders_duplicates () =
  (* Physical duplicates must be handled (positions, not values). *)
  check_int "two equal elements" 2
    (List.length (C.topological_orders [ 7; 7 ] (fun _ _ -> false)))

let test_prefix_subsequence () =
  let eq = Int.equal in
  check_bool "prefix yes" true (C.is_prefix ~eq [ 1; 2 ] [ 1; 2; 3 ]);
  check_bool "prefix empty" true (C.is_prefix ~eq [] [ 1 ]);
  check_bool "prefix no" false (C.is_prefix ~eq [ 2 ] [ 1; 2 ]);
  check_bool "prefix longer" false (C.is_prefix ~eq [ 1; 2 ] [ 1 ]);
  check_bool "subseq yes" true (C.is_subsequence ~eq [ 1; 3 ] [ 1; 2; 3 ]);
  check_bool "subseq no" false (C.is_subsequence ~eq [ 3; 1 ] [ 1; 2; 3 ])

(* Property tests *)

let small_list = QCheck2.Gen.(list_size (0 -- 5) (0 -- 3))

let prop_permutations_contain_original =
  QCheck2.Test.make ~name:"permutations contain the original list" ~count:100 small_list
    (fun xs -> List.mem xs (C.permutations xs))

let prop_subsets_contain_empty_and_full =
  QCheck2.Test.make ~name:"subsets contain [] and the full list" ~count:100 small_list
    (fun xs ->
      let ss = C.subsets xs in
      List.mem [] ss && List.mem xs ss)

let prop_topo_orders_respect_lt =
  QCheck2.Test.make ~name:"topological orders respect the order" ~count:100
    QCheck2.Gen.(list_size (0 -- 5) (0 -- 20))
    (fun xs ->
      let xs = List.sort_uniq compare xs in
      let lt a b = a + 1 = b in
      let index o x =
        match List.find_index (Int.equal x) o with Some i -> i | None -> -1
      in
      List.for_all
        (fun o ->
          List.for_all
            (fun a -> List.for_all (fun b -> (not (lt a b)) || index o a < index o b) xs)
            xs)
        (C.topological_orders xs lt))

let () =
  Alcotest.run "combinat"
    [
      ( "unit",
        [
          Alcotest.test_case "permutation counts" `Quick test_permutations_counts;
          Alcotest.test_case "permutations distinct" `Quick test_permutations_distinct;
          Alcotest.test_case "permutations valid" `Quick test_permutations_are_permutations;
          Alcotest.test_case "subsets" `Quick test_subsets;
          Alcotest.test_case "sequences" `Quick test_sequences;
          Alcotest.test_case "sequences_upto shortest first" `Quick
            test_sequences_upto_shortest_first;
          Alcotest.test_case "cartesian and pairs" `Quick test_cartesian;
          Alcotest.test_case "interleavings" `Quick test_interleavings;
          Alcotest.test_case "topological: chain" `Quick test_topological_orders_total;
          Alcotest.test_case "topological: empty relation" `Quick
            test_topological_orders_empty_relation;
          Alcotest.test_case "topological: partial order" `Quick
            test_topological_orders_partial;
          Alcotest.test_case "topological: cycle" `Quick test_topological_orders_cyclic;
          Alcotest.test_case "topological: duplicates" `Quick
            test_topological_orders_duplicates;
          Alcotest.test_case "prefix and subsequence" `Quick test_prefix_subsequence;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_permutations_contain_original;
            prop_subsets_contain_empty_and_full;
            prop_topo_orders_respect_lt;
          ] );
    ]
