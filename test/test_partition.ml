(* Tests for the cell-partitioning layer (Spec.Partition and Part).

   Two halves, matching the two obligations of fine-grained locking:

   - SOUNDNESS of the per-cell relation.  Restricting a conflict
     relation to same-cell pairs weakens it, and a weaker relation is
     not automatically a dependency relation (Definition 3).  The matrix
     here pins all three shipped verdicts: Directory by key is sound
     (the derived relation is already cell-diagonal), head/tail striping
     of the queue is sound under Figure 4-3 but UNSOUND under Figure 4-2
     (the restriction drops the Deq-depends-on-Enq pairs), and the naive
     by-amount Account split is UNSOUND (all amounts drain one balance).
     Every failing relation must fail with a retrievable Definition-3
     counterexample, and qcheck drives the sound <-> no-counterexample
     equivalence over random relations.

   - EQUIVALENCE of the partitioned machines.  Deterministically
     interleaved schedules run against a whole-object seed object and
     the cell-locked implementation simultaneously, sharing transaction
     handles so aborts synchronize; every doubly-successful response
     must agree, the final committed states must agree, and both runs
     must pass the trace-replay atomicity auditor.  Concurrent smoke
     tests then re-check the auditor under real domain parallelism. *)

module Dir = Adt.Directory
module Q = Adt.Fifo_queue
module Acc = Adt.Account
module PD = Spec.Partition.Make (Adt.Directory)
module PQ = Spec.Partition.Make (Adt.Fifo_queue)

(* The required negative example: Account split by operation amount. *)
module Acc_by_amount = struct
  include Adt.Account

  let cell_of_inv = Adt.Account.cell_of_amount
end

module PA = Spec.Partition.Make (Acc_by_amount)
module Dobj = Runtime.Atomic_obj.Make (Adt.Directory)
module Qobj = Runtime.Atomic_obj.Make (Adt.Fifo_queue)
module Aobj = Runtime.Atomic_obj.Make (Adt.Account)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- soundness matrix ---------------- *)

let test_directory_sound () =
  check_bool "partitions the universe" true (PD.partitions_universe ());
  check_bool "by-key restriction is a dependency relation" true (PD.is_sound ~depth:2);
  check_int "restriction drops nothing (already cell-diagonal)" 0
    (List.length (PD.dropped_pairs ~depth:2));
  check_bool "check renders Ok" true
    (PD.check ~depth:2 (Spec.Relation.pred (PD.D.invalidated_by ~depth:2)) = Ok ())

let test_fifo_fig_4_3_sound () =
  check_bool "head/tail partitions the universe" true (PQ.partitions_universe ());
  (match Part.Pfifo.validate ~depth:3 Q.conflict_fig_4_3 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fig 4-3 striping should be sound: %s" e);
  check_bool "fig 4-3 drops nothing" true
    (List.for_all
       (fun (p, q) -> not (Q.conflict_fig_4_3 p q))
       (PQ.dropped_pairs ~depth:3))

let test_fifo_fig_4_2_unsound () =
  (* Figure 4-2 relates Deq to Enq across the head/tail split; dropping
     that pair lets an unlocked Enq invalidate a returned Deq. *)
  check_bool "restriction drops cross-cell pairs" true (PQ.dropped_pairs ~depth:3 <> []);
  check_bool "fig 4-2 striping is not sound" false (PQ.sound ~depth:3 Q.conflict_hybrid);
  (match PQ.counterexample ~depth:3 Q.conflict_hybrid with
  | Some _ -> ()
  | None -> Alcotest.fail "unsound relation must yield a counterexample");
  match Part.Pfifo.validate ~depth:3 Q.conflict_hybrid with
  | Error e -> check_bool "error renders the schedule" true (String.length e > 0)
  | Ok () -> Alcotest.fail "validate must reject fig 4-2 striping"

let test_account_by_amount_unsound () =
  check_bool "by-amount partitions the universe" true (PA.partitions_universe ());
  check_bool "by-amount split is not sound" false (PA.is_sound ~depth:3);
  match PA.counterexample ~depth:3 (Spec.Relation.pred (PA.D.invalidated_by ~depth:3)) with
  | Some _ -> ()
  | None -> Alcotest.fail "by-amount split must yield a counterexample"

(* ---------------- qcheck: soundness properties ---------------- *)

(* Dependency relations are upward closed, and Directory's derived
   relation is cell-diagonal, so any random widening of it must stay
   sound under the by-key restriction. *)
let prop_directory_widening_sound =
  QCheck2.Test.make ~name:"directory: widened per-cell relations stay dependency relations"
    ~count:20
    QCheck2.Gen.(list_size (0 -- 8) (pair (oneofl Dir.universe) (oneofl Dir.universe)))
    (fun extra ->
      let base = Spec.Relation.pred (PD.D.invalidated_by ~depth:2) in
      PD.sound ~depth:2 (fun p q -> base p q || List.mem (p, q) extra))

(* The negative side of the contract: whenever a random relation fails
   the per-cell soundness check it must fail via a retrievable
   Definition-3 counterexample, and vice versa. *)
let prop_sound_iff_no_counterexample =
  QCheck2.Test.make ~name:"queue: sound <-> no counterexample, over random relations"
    ~count:30
    QCheck2.Gen.(list_size (0 -- 10) (pair (oneofl Q.universe) (oneofl Q.universe)))
    (fun pairs ->
      let rel p q = List.mem (p, q) pairs in
      PQ.sound ~depth:2 rel = (PQ.counterexample ~depth:2 rel = None))

(* ---------------- equivalence harness ---------------- *)

(* Run [scripts] (one invocation list per transaction) against two
   implementations at once, interleaved per [schedule].  Both
   implementations share each transaction's handle, so aborting on a
   refusal in either rolls both back; doubly-successful responses are
   compared by [equal_res].  Returns which transactions committed. *)
let run_twin ~equal_res ~pp_inv ~invoke_a ~invoke_b scripts schedule =
  let n = Array.length scripts in
  let scripts = Array.map Array.of_list scripts in
  let pos = Array.make n 0 in
  let dead = Array.make n false in
  let committed = Array.make n false in
  let txns = Array.init n (fun _ -> Runtime.Txn_rt.fresh ()) in
  let ts = ref 0 in
  let commit i =
    incr ts;
    Runtime.Txn_rt.commit txns.(i) !ts;
    committed.(i) <- true
  in
  let step i =
    if (not dead.(i)) && not committed.(i) then
      if pos.(i) >= Array.length scripts.(i) then commit i
      else begin
        let inv = scripts.(i).(pos.(i)) in
        pos.(i) <- pos.(i) + 1;
        let ra = invoke_a txns.(i) inv in
        let rb = invoke_b txns.(i) inv in
        (match (ra, rb) with
        | Ok a, Ok b ->
          if not (equal_res a b) then
            QCheck2.Test.fail_reportf "response mismatch on txn %d, %a" i pp_inv inv
        | _ ->
          (* A refusal in either implementation (conflict or blocked):
             the granularities legitimately disagree on which, so the
             only synchronized outcome is aborting both. *)
          dead.(i) <- true;
          Runtime.Txn_rt.abort txns.(i));
        if (not dead.(i)) && pos.(i) = Array.length scripts.(i) then commit i
      end
  in
  List.iter (fun j -> step (j mod n)) schedule;
  for i = 0 to n - 1 do
    while (not dead.(i)) && not committed.(i) do
      step i
    done
  done;
  Array.to_list committed

let require_ok what = function
  | Ok () -> true
  | Error e -> QCheck2.Test.fail_reportf "%s replay audit failed: %s" what e

let gen_dir_inv =
  QCheck2.Gen.(
    map2
      (fun which key ->
        match which with 0 -> Dir.Insert key | 1 -> Dir.Remove key | _ -> Dir.Member key)
      (0 -- 2) (0 -- 5))

let gen_twin_input gen_inv =
  QCheck2.Gen.(
    pair
      (array_size (2 -- 3) (list_size (1 -- 6) gen_inv))
      (list_size (5 -- 40) (0 -- 2)))

let prop_directory_equivalence =
  QCheck2.Test.make
    ~name:"directory: cell-locked equals whole-object under interleaved schedules"
    ~count:60
    (gen_twin_input gen_dir_inv)
    (fun (scripts, schedule) ->
      let ta = Obs.Trace.create ~capacity:(1 lsl 14) () in
      let tb = Obs.Trace.create ~capacity:(1 lsl 14) () in
      let whole =
        Dobj.create ~record:true ~trace:ta ~conflict:Dir.conflict_whole_object
          ~op_label:Dir.op_label ()
      in
      let part = Part.Pdir.create ~record:true ~trace:tb ~cells:3 () in
      ignore
        (run_twin ~equal_res:Dir.equal_res ~pp_inv:Dir.pp_inv
           ~invoke_a:(fun txn i -> Dobj.try_invoke whole txn i)
           ~invoke_b:(fun txn i -> Part.Pdir.try_invoke part txn i)
           scripts schedule);
      let whole_keys =
        match Dobj.committed_states whole with
        | [ s ] -> s
        | _ -> QCheck2.Test.fail_reportf "whole-object directory not deterministic"
      in
      whole_keys = Part.Pdir.committed_keys part
      && require_ok "whole-object" (Dobj.replay_check whole)
      && require_ok "cell-locked" (Part.Pdir.replay_check part))

let gen_queue_inv =
  QCheck2.Gen.(
    map2
      (fun which v -> if which = 0 then Q.Deq else Q.Enq v)
      (0 -- 2) (1 -- 2))

let prop_fifo_equivalence =
  QCheck2.Test.make
    ~name:"queue: head/tail striping equals whole-object under interleaved schedules"
    ~count:60
    (gen_twin_input gen_queue_inv)
    (fun (scripts, schedule) ->
      let ta = Obs.Trace.create ~capacity:(1 lsl 14) () in
      let tb = Obs.Trace.create ~capacity:(1 lsl 14) () in
      let whole =
        Qobj.create ~record:true ~trace:ta ~conflict:Q.conflict_fig_4_3
          ~op_label:Q.op_label ()
      in
      let striped = Part.Pfifo.create ~record:true ~trace:tb () in
      ignore
        (run_twin ~equal_res:Q.equal_res ~pp_inv:Q.pp_inv
           ~invoke_a:(fun txn i -> Qobj.try_invoke whole txn i)
           ~invoke_b:(fun txn i -> Part.Pfifo.try_invoke striped txn i)
           scripts schedule);
      List.equal Q.equal_state
        (Qobj.committed_states whole)
        (Part.Pfifo.committed_states striped)
      && require_ok "whole-object" (Qobj.replay_check whole)
      && require_ok "striped" (Part.Pfifo.replay_check striped))

let gen_acc_inv =
  QCheck2.Gen.(
    map2
      (fun which v ->
        match which with
        | 0 | 1 | 2 -> Acc.Credit v
        | 3 | 4 -> Acc.Debit (3 * v)
        | _ -> Acc.Post 1)
      (0 -- 5) (1 -- 6))

(* Sequential equivalence for the escrow account: each transaction runs
   to completion, so the sweep's cross-cell locking never waits on a
   stalled holder (single-threaded), and the comparison isolates the
   escrow decomposition itself — fast-path debits, draining sweeps with
   compensation, broadcast posts — from scheduling. *)
let prop_account_equivalence =
  QCheck2.Test.make
    ~name:"account: escrow cells equal whole-object under sequential transactions"
    ~count:60
    QCheck2.Gen.(array_size (1 -- 4) (list_size (1 -- 5) gen_acc_inv))
    (fun scripts ->
      let ta = Obs.Trace.create ~capacity:(1 lsl 14) () in
      let tb = Obs.Trace.create ~capacity:(1 lsl 14) () in
      let whole =
        Aobj.create ~record:true ~trace:ta ~conflict:Acc.conflict_hybrid
          ~op_label:Acc.op_label ()
      in
      let part = Part.Paccount.create ~record:true ~trace:tb ~cells:3 () in
      let ts = ref 0 in
      let run_txn body =
        let txn = Runtime.Txn_rt.fresh () in
        body txn;
        incr ts;
        Runtime.Txn_rt.commit txn !ts
      in
      run_txn (fun txn ->
          ignore (Aobj.invoke whole txn (Acc.Credit 20));
          ignore (Part.Paccount.invoke part txn (Acc.Credit 20)));
      Array.iter
        (fun script ->
          run_txn (fun txn ->
              List.iter
                (fun inv ->
                  let ra = Aobj.invoke whole txn inv in
                  let rb = Part.Paccount.invoke part txn inv in
                  if not (Acc.equal_res ra rb) then
                    QCheck2.Test.fail_reportf "response mismatch on %a" Acc.pp_inv inv)
                script))
        scripts;
      let whole_balance =
        match Aobj.committed_states whole with
        | [ b ] -> b
        | _ -> QCheck2.Test.fail_reportf "whole-object account not deterministic"
      in
      whole_balance = Part.Paccount.committed_balance part
      && require_ok "whole-object" (Aobj.replay_check whole)
      && require_ok "escrow" (Part.Paccount.replay_check part))

(* ---------------- concurrent smoke ---------------- *)

let test_pdir_concurrent () =
  let mgr = Runtime.Manager.create () in
  let tr = Obs.Trace.create ~capacity:(1 lsl 16) () in
  let d = Part.Pdir.create ~record:true ~trace:tr ~cells:4 () in
  let worker dom =
    Domain.spawn (fun () ->
        for s = 0 to 24 do
          Runtime.Manager.run mgr (fun txn ->
              for k = 0 to 2 do
                let key = ((dom * 7) + (s * 3) + k) mod 16 in
                let inv =
                  match (s + k) mod 3 with
                  | 0 -> Dir.Insert key
                  | 1 -> Dir.Remove key
                  | _ -> Dir.Member key
                in
                ignore (Part.Pdir.invoke d txn inv)
              done)
        done)
  in
  List.iter Domain.join (List.init 4 worker);
  (match Part.Pdir.replay_check d with
  | Ok () -> ()
  | Error e -> Alcotest.failf "per-cell replay audit: %s" e);
  check_bool "cells materialized" true
    (List.length (Part.Pdir.C.created (Part.Pdir.cells d)) > 1)

let test_paccount_concurrent () =
  let mgr = Runtime.Manager.create () in
  let tr = Obs.Trace.create ~capacity:(1 lsl 16) () in
  let a = Part.Paccount.create ~record:true ~trace:tr ~cells:3 () in
  Runtime.Manager.run mgr (fun txn -> ignore (Part.Paccount.invoke a txn (Acc.Credit 1000)));
  let net = Atomic.make 0 in
  let worker dom =
    Domain.spawn (fun () ->
        for s = 0 to 19 do
          let delta =
            Runtime.Manager.run mgr (fun txn ->
                let amount = 1 + (((dom * 13) + (s * 7)) mod 9) in
                if (dom + s) mod 2 = 0 then begin
                  ignore (Part.Paccount.invoke a txn (Acc.Credit amount));
                  amount
                end
                else
                  match Part.Paccount.invoke a txn (Acc.Debit amount) with
                  | Acc.Ok -> -amount
                  | Acc.Overdraft -> 0)
          in
          ignore (Atomic.fetch_and_add net delta)
        done)
  in
  List.iter Domain.join (List.init 4 worker);
  check_int "escrow balance equals committed net" (1000 + Atomic.get net)
    (Part.Paccount.committed_balance a);
  match Part.Paccount.replay_check a with
  | Ok () -> ()
  | Error e -> Alcotest.failf "per-cell replay audit: %s" e

(* ---------------- Zipfian key selection ---------------- *)

module Keys = Sim.Conflict_profile.Keys

let test_keys_uniform () =
  let t = Keys.make ~skew:0. ~n:16 in
  for i = 0 to 15 do
    check_bool "uniform weight" true (abs_float (Keys.weight t i -. (1. /. 16.)) < 1e-9)
  done;
  check_bool "uniform collision = 1/n" true (abs_float (Keys.collision t -. (1. /. 16.)) < 1e-9)

let test_keys_skewed () =
  let u = Keys.make ~skew:0. ~n:16 in
  let t = Keys.make ~skew:1.2 ~n:16 in
  check_bool "skew concentrates on key 0" true (Keys.weight t 0 > Keys.weight t 15);
  check_bool "skew raises collision probability" true (Keys.collision t > Keys.collision u)

let test_keys_draw_deterministic () =
  let t = Keys.make ~skew:0.8 ~n:32 in
  let all_in_range = ref true and differs = ref false in
  for seq = 0 to 99 do
    let a = Keys.draw t ~seed:1 ~domain:0 ~seq ~k:0 in
    let b = Keys.draw t ~seed:1 ~domain:0 ~seq ~k:0 in
    let c = Keys.draw t ~seed:2 ~domain:0 ~seq ~k:0 in
    if a < 0 || a >= 32 then all_in_range := false;
    if a <> b then Alcotest.fail "same inputs must draw the same key";
    if a <> c then differs := true
  done;
  check_bool "draws in range" true !all_in_range;
  check_bool "seed changes the sequence" true !differs

let () =
  Alcotest.run "partition"
    [
      ( "soundness",
        [
          Alcotest.test_case "directory by key is sound" `Quick test_directory_sound;
          Alcotest.test_case "fifo fig 4-3 striping is sound" `Slow test_fifo_fig_4_3_sound;
          Alcotest.test_case "fifo fig 4-2 striping is unsound" `Slow
            test_fifo_fig_4_2_unsound;
          Alcotest.test_case "account by-amount is unsound" `Slow
            test_account_by_amount_unsound;
        ] );
      ( "soundness-properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_directory_widening_sound; prop_sound_iff_no_counterexample ] );
      ( "equivalence",
        List.map QCheck_alcotest.to_alcotest
          [ prop_directory_equivalence; prop_fifo_equivalence; prop_account_equivalence ]
      );
      ( "concurrent",
        [
          Alcotest.test_case "pdir 4 domains" `Slow test_pdir_concurrent;
          Alcotest.test_case "paccount 4 domains" `Slow test_paccount_concurrent;
        ] );
      ( "keys",
        [
          Alcotest.test_case "uniform" `Quick test_keys_uniform;
          Alcotest.test_case "skewed" `Quick test_keys_skewed;
          Alcotest.test_case "deterministic draws" `Quick test_keys_draw_deterministic;
        ] );
    ]
