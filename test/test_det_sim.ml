(* Tests for the deterministic virtual-time simulator and the
   deterministic experiment suite.  Because everything is a pure
   function of the scripts, the paper's concurrency claims become exact
   assertions here, not statistical trends. *)

module Q = Adt.Fifo_queue
module A = Adt.Account
module DQ = Sim.Det_sim.Make (Q)
module DA = Sim.Det_sim.Make (A)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- simulator mechanics ---------------- *)

let enq_script txns ops w =
  List.init txns (fun k -> List.init ops (fun j -> Q.Enq (1 + ((w + k + j) mod 2))))

let test_single_worker_baseline () =
  (* One worker, no contention: makespan = txns * ops * think exactly. *)
  let r = DQ.run ~conflict:Q.conflict_hybrid [| enq_script 5 3 0 |] in
  check_int "committed" 5 r.DQ.committed;
  check_int "conflicts" 0 r.DQ.conflicts;
  check_int "makespan" (5 * 3 * 100) r.DQ.makespan;
  Alcotest.(check (float 0.001)) "serial concurrency" 1.0 (DQ.concurrency r)

let test_perfect_overlap () =
  (* Conflict-free workload on N workers: same makespan as one worker. *)
  let scripts = Array.init 4 (enq_script 5 3) in
  let r = DQ.run ~conflict:Q.conflict_hybrid scripts in
  check_int "committed" 20 r.DQ.committed;
  check_int "makespan equals single worker" (5 * 3 * 100) r.DQ.makespan;
  Alcotest.(check (float 0.001)) "perfect concurrency" 4.0 (DQ.concurrency r)

let test_full_serialization () =
  (* Everything conflicts: makespan at least workers x serial time. *)
  let scripts = Array.init 4 (enq_script 5 3) in
  let r = DQ.run ~conflict:Q.conflict_rw scripts in
  check_int "committed" 20 r.DQ.committed;
  check_bool "serialized" true (r.DQ.makespan >= 4 * 5 * 3 * 100);
  check_bool "conflicts observed" true (r.DQ.conflicts > 0)

let test_determinism () =
  let scripts = Array.init 3 (enq_script 7 4) in
  let r1 = DQ.run ~conflict:Q.conflict_fig_4_3 scripts in
  let r2 = DQ.run ~conflict:Q.conflict_fig_4_3 scripts in
  check_bool "identical results" true (r1 = r2)

let test_prefill () =
  (* Consumers over a prefilled queue: all dequeues succeed. *)
  let prefill = List.init 30 (fun k -> Q.Enq (1 + (k mod 2))) in
  let scripts = Array.init 2 (fun _ -> List.init 5 (fun _ -> [ Q.Deq; Q.Deq ])) in
  let r = DQ.run ~prefill ~conflict:Q.conflict_hybrid scripts in
  check_int "all committed" 10 r.DQ.committed

let test_blocked_progress_failure () =
  (* A consumer over an empty queue can never finish. *)
  let scripts = [| [ [ Q.Deq ] ] |] in
  check_bool "fails with no progress" true
    (try
       ignore (DQ.run ~conflict:Q.conflict_hybrid scripts);
       false
     with Failure _ -> true)

let test_wait_die_in_sim () =
  (* Two workers with crossing enq values under fig 4-3 deadlock without
     wait-die; the simulation must complete. *)
  let scripts =
    [|
      List.init 5 (fun _ -> [ Q.Enq 1; Q.Enq 2 ]);
      List.init 5 (fun _ -> [ Q.Enq 2; Q.Enq 1 ]);
    |]
  in
  let r = DQ.run ~conflict:Q.conflict_fig_4_3 scripts in
  check_int "completes" 10 r.DQ.committed;
  check_bool "restarts happened" true (r.DQ.restarts > 0)

let test_account_correctness_under_sim () =
  (* The simulated final state equals the serial sum regardless of the
     interleaving the simulator chose. *)
  let scripts =
    Array.init 3 (fun w ->
        List.init 10 (fun k -> [ A.Credit (1 + ((w + k) mod 5)) ]))
  in
  let r = DA.run ~conflict:A.conflict_hybrid scripts in
  check_int "all committed" 30 r.DA.committed;
  check_bool "no conflicts between credits" true (r.DA.conflicts = 0)

(* ---------------- the paper's claims as exact assertions ------------- *)

let test_det_queue_enq_claims () =
  let t = Sim.Det_experiments.det_queue_enq () in
  match t.Sim.Det_experiments.rows with
  | [ hybrid; fig43; rw ] ->
    check_int "hybrid zero conflicts" 0 hybrid.Sim.Det_experiments.conflicts;
    Alcotest.(check (float 0.001))
      "hybrid perfect concurrency" 4.0 hybrid.Sim.Det_experiments.concurrency;
    check_bool "hybrid strictly fastest" true
      (hybrid.Sim.Det_experiments.makespan < fig43.Sim.Det_experiments.makespan
      && hybrid.Sim.Det_experiments.makespan < rw.Sim.Det_experiments.makespan);
    check_bool "hybrid at least 3x faster" true
      (3 * hybrid.Sim.Det_experiments.makespan <= fig43.Sim.Det_experiments.makespan)
  | _ -> Alcotest.fail "three rows expected"

let test_det_queue_mixed_claims () =
  let t = Sim.Det_experiments.det_queue_mixed () in
  match t.Sim.Det_experiments.rows with
  | [ hybrid42; fig43; rw ] ->
    (* incomparability: the mixed workload reverses the enq-only order *)
    check_bool "fig 4-3 beats fig 4-2 here" true
      (fig43.Sim.Det_experiments.makespan < hybrid42.Sim.Det_experiments.makespan);
    check_bool "both beat RW" true
      (hybrid42.Sim.Det_experiments.makespan < rw.Sim.Det_experiments.makespan)
  | _ -> Alcotest.fail "three rows expected"

let test_det_account_claims () =
  let t = Sim.Det_experiments.det_account () in
  match t.Sim.Det_experiments.rows with
  | [ hybrid; commut; rw ] ->
    check_bool "hybrid beats commutativity" true
      (hybrid.Sim.Det_experiments.makespan < commut.Sim.Det_experiments.makespan);
    check_bool "commutativity beats RW" true
      (commut.Sim.Det_experiments.makespan < rw.Sim.Det_experiments.makespan);
    check_bool "hybrid fewer conflicts" true
      (hybrid.Sim.Det_experiments.conflicts < commut.Sim.Det_experiments.conflicts)
  | _ -> Alcotest.fail "three rows expected"

let test_det_semiqueue_claims () =
  let t = Sim.Det_experiments.det_semiqueue () in
  match t.Sim.Det_experiments.rows with
  | [ semi; q42; q43 ] ->
    check_int "semiqueue zero conflicts" 0 semi.Sim.Det_experiments.conflicts;
    Alcotest.(check (float 0.001))
      "semiqueue perfect concurrency" 4.0 semi.Sim.Det_experiments.concurrency;
    check_bool "semiqueue fastest" true
      (semi.Sim.Det_experiments.makespan < q42.Sim.Det_experiments.makespan
      && semi.Sim.Det_experiments.makespan < q43.Sim.Det_experiments.makespan)
  | _ -> Alcotest.fail "three rows expected"

let test_det_reproducibility () =
  let t1 = Sim.Det_experiments.all () in
  let t2 = Sim.Det_experiments.all () in
  check_bool "all tables identical across runs" true (t1 = t2)

let () =
  Alcotest.run "det_sim"
    [
      ( "mechanics",
        [
          Alcotest.test_case "single-worker baseline" `Quick test_single_worker_baseline;
          Alcotest.test_case "perfect overlap" `Quick test_perfect_overlap;
          Alcotest.test_case "full serialization" `Quick test_full_serialization;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "prefill" `Quick test_prefill;
          Alcotest.test_case "no-progress detection" `Quick test_blocked_progress_failure;
          Alcotest.test_case "wait-die resolves deadlock" `Quick test_wait_die_in_sim;
          Alcotest.test_case "account correctness" `Quick
            test_account_correctness_under_sim;
        ] );
      ( "paper-claims",
        [
          Alcotest.test_case "queue enqueue-only" `Quick test_det_queue_enq_claims;
          Alcotest.test_case "queue mixed (incomparability)" `Quick
            test_det_queue_mixed_claims;
          Alcotest.test_case "account" `Quick test_det_account_claims;
          Alcotest.test_case "semiqueue" `Quick test_det_semiqueue_claims;
          Alcotest.test_case "exact reproducibility" `Quick test_det_reproducibility;
        ] );
    ]
