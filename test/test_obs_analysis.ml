(* Tests for the trace-analysis layer: quantiles and JSON metric dumps
   (Obs.Metrics), the ring-wrap property, conflict attribution end to
   end (Compacted -> Atomic_obj -> trace -> Obs.Attrib), the wait-for
   auditor, and the Chrome trace export. *)

module A = Adt.Account
module AObj = Runtime.Atomic_obj.Make (A)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ---------------- Metrics.quantile ---------------- *)

let test_quantile_interpolation () =
  let h = Obs.Metrics.histogram ~bounds:[| 10.; 20. |] "test.obs.quantile" in
  for _ = 1 to 10 do
    Obs.Metrics.observe h 5.
  done;
  (* ten samples in (0, 10]: rank q*10 interpolates linearly there *)
  check_float "p50 in first bucket" 5. (Obs.Metrics.quantile h 0.5);
  check_float "p95 in first bucket" 9.5 (Obs.Metrics.quantile h 0.95);
  for _ = 1 to 4 do
    Obs.Metrics.observe h 15.
  done;
  (* 14 samples: p50 rank 7 still in (0, 10]; p100 tops the last bound *)
  check_float "p50 after more samples" 7. (Obs.Metrics.quantile h 0.5);
  check_float "p100 is the top bound" 20. (Obs.Metrics.quantile h 1.0);
  (* out-of-range q is clamped *)
  check_float "q clamped below" 0. (Obs.Metrics.quantile h (-1.));
  check_float "q clamped above" 20. (Obs.Metrics.quantile h 2.)

let test_quantile_edge_cases () =
  let h = Obs.Metrics.histogram ~bounds:[| 1.; 2. |] "test.obs.quantile-empty" in
  check_float "empty histogram" 0. (Obs.Metrics.quantile h 0.5);
  (* a sample beyond every bound reports the largest finite bound: the
     histogram cannot resolve further, and under-reporting is honest *)
  let h2 = Obs.Metrics.histogram ~bounds:[| 1.; 2. |] "test.obs.quantile-inf" in
  Obs.Metrics.observe h2 100.;
  check_float "overflow clamps to last bound" 2. (Obs.Metrics.quantile h2 0.99)

let test_dump_json () =
  let c = Obs.Metrics.counter "test.obs.json-counter" in
  Obs.Metrics.add c 7;
  let h = Obs.Metrics.histogram ~bounds:[| 0.5 |] "test.obs.json-hist" in
  Obs.Metrics.observe h 0.25;
  let out = Format.asprintf "%a" Obs.Metrics.dump_json () in
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  check_bool "every line is one JSON object" true
    (List.for_all
       (fun l -> String.length l >= 2 && l.[0] = '{' && l.[String.length l - 1] = '}')
       lines);
  let has needle = List.exists (fun l -> Astring_contains.contains l needle) lines in
  check_bool "counter line" true
    (has "\"type\":\"counter\",\"name\":\"test.obs.json-counter\",\"value\":7");
  check_bool "histogram line carries count and quantiles" true
    (has "\"name\":\"test.obs.json-hist\"" && has "\"count\":1" && has "\"p50\":");
  check_bool "histogram line carries buckets" true (has "\"buckets\":[{\"le\":0.5")

(* ---------------- ring wrap property ---------------- *)

let prop_ring_wrap n =
  let cap = 8 in
  let tr = Obs.Trace.create ~capacity:cap () in
  for k = 0 to n - 1 do
    Obs.Trace.emit tr ~obj:1 ~txn:k (Obs.Trace.Commit k)
  done;
  let es = Obs.Trace.entries tr in
  let expect_len = min n cap in
  if List.length es <> expect_len then
    QCheck.Test.fail_reportf "window size %d, expected %d" (List.length es) expect_len;
  if Obs.Trace.dropped tr <> max 0 (n - cap) then
    QCheck.Test.fail_reportf "dropped %d, expected %d" (Obs.Trace.dropped tr)
      (max 0 (n - cap));
  (* the survivors are exactly the newest emissions, in order *)
  let seqs = List.map (fun e -> e.Obs.Trace.seq) es in
  let expected = List.init expect_len (fun i -> n - expect_len + i) in
  if seqs <> expected then QCheck.Test.fail_report "window is not the contiguous suffix";
  true

let test_ring_wrap_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100
       ~name:"ring keeps the newest contiguous suffix; dropped == overflow"
       QCheck.(int_range 0 50)
       prop_ring_wrap)

(* ---------------- conflict attribution end to end ----------------

   A deterministic two-transaction interleaving on one account: t1
   locks Debit/Ok, t2's Debit then hits DEBIT-DEBIT (fig 4-5).  The
   refusal in the trace must name t1 as holder and carry op codes that
   decode to the exact (requested, held) operation pair. *)

let test_refusal_attribution () =
  let tr = Obs.Trace.create ~capacity:256 () in
  let mgr = Runtime.Manager.create () in
  let acc = AObj.create ~trace:tr ~conflict:A.conflict_hybrid () in
  Runtime.Manager.run mgr (fun txn -> ignore (AObj.invoke acc txn (A.Credit 100)));
  let t1 = Runtime.Txn_rt.fresh () in
  let t2 = Runtime.Txn_rt.fresh () in
  (match AObj.try_invoke acc t1 (A.Debit 5) with
  | Ok A.Ok -> ()
  | _ -> Alcotest.fail "t1's debit should succeed");
  (match AObj.try_invoke acc t2 (A.Debit 3) with
  | Error (`Conflict (Some c)) ->
    check_int "failure names t1" (Runtime.Txn_rt.id t1) c.Runtime.Retry.holder
  | Ok _ -> Alcotest.fail "t2's debit should conflict"
  | Error _ -> Alcotest.fail "expected a conflict with a known holder");
  (match
     List.filter_map
       (fun e ->
         match e.Obs.Trace.event with
         | Obs.Trace.Lock_refused r -> Some (e.Obs.Trace.txn, r)
         | _ -> None)
       (Obs.Trace.entries tr)
   with
  | [ (txn, r) ] ->
    check_int "refusal tagged with the requester" (Runtime.Txn_rt.id t2) txn;
    (match r.Obs.Trace.holder with
    | Some h -> check_int "refusal names t1 as holder" (Runtime.Txn_rt.id t1) h
    | None -> Alcotest.fail "refusal lost the holder");
    check_bool "requested op decodes" true
      (AObj.decode_op acc r.Obs.Trace.requested = Some (A.Debit 3, A.Ok));
    check_bool "held op decodes" true
      (AObj.decode_op acc r.Obs.Trace.held = Some (A.Debit 5, A.Ok))
  | l -> Alcotest.failf "expected exactly one refusal, got %d" (List.length l));
  (* the fold sees the same cell, with human-readable labels *)
  let at = Obs.Attrib.of_entries (Obs.Trace.entries tr) in
  check_int "one fired conflict" 1 (Obs.Attrib.total_refusals at);
  (match Obs.Attrib.labelled_cells at with
  | [ ((_, requested, held), cell) ] ->
    check_int "cell refusals" 1 cell.Obs.Attrib.refusals;
    check_bool "requested label" true (Astring_contains.contains requested "Debit");
    check_bool "held label" true (Astring_contains.contains held "Debit")
  | _ -> Alcotest.fail "expected exactly one matrix cell");
  check_bool "holder ranking charges t1" true
    (Obs.Attrib.holders at = [ (Runtime.Txn_rt.id t1, 1) ]);
  Runtime.Txn_rt.abort t2;
  Runtime.Txn_rt.abort t1

(* ---------------- Attrib fold on a synthetic window ---------------- *)

let entry seq time obj txn event = { Obs.Trace.seq; time; obj; txn; event }

let test_attrib_blocked_time () =
  let refusal = Obs.Trace.Lock_refused { holder = Some 1; requested = 0; held = 1 } in
  let window =
    [
      entry 0 0 7 2 refusal;
      entry 1 1_000 7 2 refusal;
      (* second refusal of the same stalled attempt: counts, no reopen *)
      entry 2 3_000 7 2 Obs.Trace.Lock_granted;
      entry 3 9_000 8 3 refusal;
      (* never granted: charged up to the last entry *)
      entry 4 10_000 8 3 (Obs.Trace.Commit 1);
    ]
  in
  let at = Obs.Attrib.of_entries window in
  check_int "three refusals" 3 (Obs.Attrib.total_refusals at);
  check_int "blocked: 3000 on obj 7 + 1000 on obj 8" 4_000 (Obs.Attrib.total_blocked_ns at);
  check_int "two cells (per object)" 2 (List.length (Obs.Attrib.cells at));
  check_bool "holder 1 charged all three" true (Obs.Attrib.holders at = [ (1, 3) ])

(* ---------------- Waitfor on synthetic windows ---------------- *)

let refused ~holder = Obs.Trace.Lock_refused { holder = Some holder; requested = 0; held = 0 }

let test_waitfor_wait_die_victim_is_no_edge () =
  (* a refusal followed by death, never a Retry: wait-die killed the
     requester, so no waits-for edge may appear *)
  let window =
    [
      entry 0 0 7 3 (refused ~holder:2);
      entry 1 100 7 3 Obs.Trace.Abort;
      entry 2 200 7 2 (Obs.Trace.Commit 1);
    ]
  in
  let r = Obs.Waitfor.analyze window in
  check_int "no confirmed edges" 0 r.Obs.Waitfor.edges;
  check_bool "acyclic" true (Obs.Waitfor.ok r);
  check_bool "but the death is attributed to the holder" true
    (r.Obs.Waitfor.deaths = [ (3, 2) ])

let test_waitfor_detects_cycle () =
  (* two transactions each confirmed waiting on the other: the exact
     protocol bug wait-die exists to prevent *)
  let window =
    [
      entry 0 0 7 1 (refused ~holder:2);
      entry 1 10 7 1 Obs.Trace.Retry;
      entry 2 20 8 2 (refused ~holder:1);
      entry 3 30 8 2 Obs.Trace.Retry;
    ]
  in
  let r = Obs.Waitfor.analyze window in
  check_int "two confirmed edges" 2 r.Obs.Waitfor.edges;
  check_bool "cycle detected" false (Obs.Waitfor.ok r);
  (match r.Obs.Waitfor.cycles with
  | [ loop ] -> check_bool "loop names both" true (List.sort compare loop = [ 1; 2 ])
  | l -> Alcotest.failf "expected one cycle, got %d" (List.length l))

let test_waitfor_grant_closes_edge () =
  let window =
    [
      entry 0 0 7 1 (refused ~holder:2);
      entry 1 1_000 7 1 Obs.Trace.Retry;
      entry 2 5_000 7 1 Obs.Trace.Lock_granted;
      (* 2 then waits on 1 — no cycle, 1 no longer waits *)
      entry 3 6_000 8 2 (refused ~holder:1);
      entry 4 7_000 8 2 Obs.Trace.Retry;
      entry 5 9_000 8 2 Obs.Trace.Lock_granted;
    ]
  in
  let r = Obs.Waitfor.analyze window in
  check_bool "acyclic" true (Obs.Waitfor.ok r);
  check_int "two edges over time" 2 r.Obs.Waitfor.edges;
  check_int "never simultaneous" 1 r.Obs.Waitfor.max_width;
  check_bool "blocked time from first refusal to grant" true
    (List.sort compare r.Obs.Waitfor.blocked_ns = [ (1, 5_000); (2, 3_000) ])

let test_waitfor_death_chain () =
  (* 3 dies on 2, then 2 dies on 1: a two-link abort cascade *)
  let window =
    [
      entry 0 0 7 3 (refused ~holder:2);
      entry 1 10 7 3 Obs.Trace.Abort;
      entry 2 20 7 2 (refused ~holder:1);
      entry 3 30 7 2 Obs.Trace.Abort;
      entry 4 40 7 1 (Obs.Trace.Commit 1);
    ]
  in
  let r = Obs.Waitfor.analyze window in
  check_bool "deaths recorded in order" true
    (r.Obs.Waitfor.deaths = [ (3, 2); (2, 1) ]);
  check_bool "cascade found" true (r.Obs.Waitfor.longest_death_chain = [ 3; 2; 1 ])

(* ---------------- Chrome export ---------------- *)

let test_chrome_export () =
  let tr = Obs.Trace.create ~capacity:256 () in
  let mgr = Runtime.Manager.create () in
  let acc = AObj.create ~trace:tr ~conflict:A.conflict_hybrid () in
  Runtime.Manager.run mgr (fun txn ->
      ignore (AObj.invoke acc txn (A.Credit 100));
      ignore (AObj.invoke acc txn (A.Debit 10)));
  let out = Format.asprintf "%a" Obs.Export.chrome_trace (Obs.Trace.entries tr) in
  let trimmed = String.trim out in
  check_bool "JSON array" true
    (String.length trimmed > 1
    && trimmed.[0] = '['
    && trimmed.[String.length trimmed - 1] = ']');
  let has needle = Astring_contains.contains out needle in
  check_bool "object and transaction process metadata" true
    (has "\"process_name\"" && has "\"objects\"" && has "\"transactions\"");
  check_bool "operation spans are named by invocation label" true
    (has "\"ph\":\"X\"" && has "Credit(100)" && has "Debit(10)");
  check_bool "commit instants" true (has "\"commit\"");
  (* microsecond timestamps rebased to the window start *)
  check_bool "rebased timestamps" true (has "\"ts\":0")

let test_chrome_export_empty () =
  (* an empty window still yields a loadable array (process metadata
     only, no spans or instants) *)
  let out = Format.asprintf "%a" Obs.Export.chrome_trace [] in
  let trimmed = String.trim out in
  check_bool "still a JSON array" true
    (trimmed.[0] = '[' && trimmed.[String.length trimmed - 1] = ']');
  check_bool "no spans or instants" true
    ((not (Astring_contains.contains out "\"ph\":\"X\""))
    && not (Astring_contains.contains out "\"ph\":\"i\""))

let () =
  Alcotest.run "obs-analysis"
    [
      ( "quantiles",
        [
          Alcotest.test_case "interpolation" `Quick test_quantile_interpolation;
          Alcotest.test_case "edge cases" `Quick test_quantile_edge_cases;
          Alcotest.test_case "dump_json" `Quick test_dump_json;
        ] );
      ("trace-ring", [ test_ring_wrap_prop ]);
      ( "attribution",
        [
          Alcotest.test_case "refusal carries holder and op pair" `Quick
            test_refusal_attribution;
          Alcotest.test_case "blocked-time fold" `Quick test_attrib_blocked_time;
        ] );
      ( "wait-for",
        [
          Alcotest.test_case "wait-die victim opens no edge" `Quick
            test_waitfor_wait_die_victim_is_no_edge;
          Alcotest.test_case "confirmed mutual wait is a cycle" `Quick
            test_waitfor_detects_cycle;
          Alcotest.test_case "grant closes the edge" `Quick test_waitfor_grant_closes_edge;
          Alcotest.test_case "abort cascades chain" `Quick test_waitfor_death_chain;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace shape" `Quick test_chrome_export;
          Alcotest.test_case "empty window" `Quick test_chrome_export_empty;
        ] );
    ]
