(* Regression tests for the lock-free hot-path rework: the splitmix
   jitter avalanche (congruent keys must decorrelate), wait-die on the
   priority captured with the refusal (recycled holder ids must not
   change the verdict), the striped stable_time watermark (an idle shard
   is stable up to the next timestamp it could possibly issue, not just
   its last draw), multi-domain timestamp allocation (residue class,
   uniqueness, monotone watermark under concurrency), and the park/wake
   scheduler rendezvous.  The ENOSPC no-wedge behaviour of the in-flight
   set is covered by test_wal_group, which must stay green against the
   slot-based implementation. *)

module Q = Adt.Fifo_queue
module QObj = Runtime.Atomic_obj.Make (Q)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_prio = Alcotest.(check (option int))

(* ---------------- Backoff.jitter (satellite: weak 16-bit mix) ------- *)

(* The seed implementation kept only the 16 low bits of a linear prime
   mix, so keys congruent mod 65536 — e.g. transaction ids from two
   restarts of the same striped workload — got identical jitter on every
   attempt and woke in lockstep.  The avalanche must spread them. *)
let test_jitter_spreads_congruent_keys () =
  let saved = Runtime.Backoff.current_seed () in
  Runtime.Backoff.set_seed 0;
  Fun.protect ~finally:(fun () -> Runtime.Backoff.set_seed saved) @@ fun () ->
  let n = 32 in
  let vals = List.init n (fun i -> Runtime.Backoff.jitter ~key:(i * 65536) ~attempt:3) in
  List.iter (fun v -> check_bool "jitter in [0,1)" true (0.0 <= v && v < 1.0)) vals;
  let distinct = List.length (List.sort_uniq compare vals) in
  check_bool
    (Printf.sprintf "congruent keys decorrelate (%d/%d distinct)" distinct n)
    true (distinct >= 24)

let prop_jitter_range_and_determinism =
  QCheck2.Test.make ~name:"jitter is deterministic and in [0,1)" ~count:200
    QCheck2.Gen.(pair (0 -- 1_000_000) (0 -- 20))
    (fun (key, attempt) ->
      let a = Runtime.Backoff.jitter ~key ~attempt in
      let b = Runtime.Backoff.jitter ~key ~attempt in
      0.0 <= a && a < 1.0 && a = b)

(* ---------------- wait-die on the captured priority ---------------- *)

(* The refusal must carry the holder's priority, resolved by the object
   inside the locked/consistent section that observed the conflict. *)
let test_conflict_carries_captured_priority () =
  let q = QObj.create ~conflict:Q.conflict_rw () in
  let holder = Runtime.Txn_rt.fresh ~priority:77 () in
  (match QObj.try_invoke q holder (Q.Enq 1) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "holder's enq should succeed");
  let req = Runtime.Txn_rt.fresh () in
  (match QObj.try_invoke q req (Q.Enq 2) with
  | Error (`Conflict (Some c)) ->
    check_int "holder id" (Runtime.Txn_rt.id holder) c.Runtime.Retry.holder;
    check_prio "captured priority" (Some 77) c.Runtime.Retry.holder_priority
  | _ -> Alcotest.fail "expected a conflict with a known holder");
  Runtime.Txn_rt.abort req;
  Runtime.Txn_rt.abort holder

(* The recycled-holder-id regression: the holder completes between the
   refusal and the wait-die check, and its id is immediately re-used by
   a much older transaction (coordinators register explicit ids, so ids
   genuinely recur).  The old implementation looked the priority up by
   id at check time, resolved the {e new} transaction, and killed a
   requester that should have waited.  The captured priority must make
   the requester survive. *)
let test_wait_die_survives_recycled_holder_id () =
  let q = QObj.create ~conflict:Q.conflict_rw () in
  let holder = Runtime.Txn_rt.fresh ~priority:100 () in
  (match QObj.try_invoke q holder (Q.Enq 1) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "holder's enq should succeed");
  let requester = Runtime.Txn_rt.fresh ~priority:50 () in
  let captured =
    match QObj.try_invoke q requester (Q.Enq 2) with
    | Error (`Conflict (Some c)) -> c
    | _ -> Alcotest.fail "expected a conflict"
  in
  check_prio "refusal captured the live priority" (Some 100)
    captured.Runtime.Retry.holder_priority;
  (* Holder completes; an older transaction takes over its id. *)
  Runtime.Txn_rt.abort holder;
  let recycled =
    Runtime.Txn_rt.fresh ~id:captured.Runtime.Retry.holder ~priority:1 ()
  in
  check_prio "registry now resolves the id to the recycled priority" (Some 1)
    (Runtime.Txn_rt.priority_of_id captured.Runtime.Retry.holder);
  (* Replay the stale refusal through the retry loop.  A live registry
     lookup would compare 50 > 1 and kill the requester; the captured
     priority (100) says wait — and the subsequent re-attempt succeeds
     because the real holder is gone. *)
  let first = ref true in
  let r =
    Runtime.Retry.run ~name:"recycled-holder" ~self:requester (fun () ->
        if !first then begin
          first := false;
          Error (`Conflict (Some captured))
        end
        else QObj.try_invoke q requester (Q.Enq 2))
  in
  check_bool "requester survived and enqueued" true (r = Q.Ok);
  Runtime.Txn_rt.abort requester;
  Runtime.Txn_rt.abort recycled

(* The policy itself is unchanged: a captured priority older than the
   requester still kills immediately. *)
let test_wait_die_still_dies_on_older_holder () =
  let self = Runtime.Txn_rt.fresh ~priority:50 () in
  let stale = { Runtime.Retry.holder = 424242; holder_priority = Some 10 } in
  (match
     Runtime.Retry.run ~name:"older-holder" ~self (fun () ->
         (Error (`Conflict (Some stale)) : (unit, Runtime.Retry.failure) result))
   with
  | () -> Alcotest.fail "should have died"
  | exception Runtime.Txn_rt.Abort_requested _ -> ());
  Runtime.Txn_rt.abort self

(* ---------------- striped stable_time (satellite: residue bug) ----- *)

(* Stripe (1, 4) issues 1, 5, 9, ...  After committing timestamp 5 with
   nothing in flight, the shard can never issue 6, 7 or 8 — and adopting
   a foreign decided timestamp first pins a prepared one in flight — so
   the watermark must read 8, not 5: a cross-shard wait-till-stable for
   timestamp 7 would otherwise hang forever on an idle shard. *)
let test_striped_idle_watermark () =
  let mgr = Runtime.Manager.create ~stripe:(1, 4) () in
  check_int "initial stable" 0 (Runtime.Manager.stable_time mgr);
  Runtime.Manager.run mgr (fun _ -> ());
  check_int "clock after first commit" 1 (Runtime.Manager.current_time mgr);
  check_int "idle watermark covers the unissuable gap" 4
    (Runtime.Manager.stable_time mgr);
  Runtime.Manager.run mgr (fun _ -> ());
  check_int "clock after second commit" 5 (Runtime.Manager.current_time mgr);
  check_int "idle watermark after ts 5" 8 (Runtime.Manager.stable_time mgr)

(* The default (0, 1) stripe must keep the seed behaviour exactly:
   stable = clock when idle. *)
let test_default_stripe_watermark_unchanged () =
  let mgr = Runtime.Manager.create () in
  check_int "initial stable" 0 (Runtime.Manager.stable_time mgr);
  Runtime.Manager.run mgr (fun _ -> ());
  check_int "stable = clock when idle" 1 (Runtime.Manager.stable_time mgr);
  check_int "clock" 1 (Runtime.Manager.current_time mgr)

(* A prepared-but-undecided transaction pins the watermark below its
   timestamp; the decision releases it. *)
let test_prepared_pin_blocks_watermark () =
  let mgr = Runtime.Manager.create ~stripe:(1, 4) () in
  Runtime.Manager.run mgr (fun _ -> ());
  Runtime.Manager.run mgr (fun _ -> ());
  (* draws so far: 1, 5; idle watermark 8 *)
  let b = Runtime.Txn_rt.fresh () in
  let prepared = Runtime.Manager.prepare mgr b ~gtxn:(Runtime.Txn_rt.id b) in
  check_int "third draw" 9 prepared;
  check_int "prepared pin holds the watermark" 8 (Runtime.Manager.stable_time mgr);
  Runtime.Manager.decide_abort mgr b ~prepared;
  check_int "abort releases the pin" 12 (Runtime.Manager.stable_time mgr)

(* Adopting a foreign decided timestamp (2PC phase 2) Lamport-merges
   into the stripe: the watermark and the next draw both jump past it. *)
let test_decided_adoption_advances_stripe () =
  let mgr = Runtime.Manager.create ~stripe:(1, 4) () in
  let b = Runtime.Txn_rt.fresh () in
  let prepared = Runtime.Manager.prepare mgr b ~gtxn:(Runtime.Txn_rt.id b) in
  check_int "first draw" 1 prepared;
  (* decided timestamp 15 ≡ 3 (mod 4): another stripe's draw won. *)
  Runtime.Manager.decide_commit mgr b ~prepared ~ts:15;
  check_int "clock observed the decision" 15 (Runtime.Manager.current_time mgr);
  check_int "watermark covers up to the next issuable ts" 16
    (Runtime.Manager.stable_time mgr);
  let b2 = Runtime.Txn_rt.fresh () in
  let p2 = Runtime.Manager.prepare mgr b2 ~gtxn:(Runtime.Txn_rt.id b2) in
  check_int "next draw exceeds the adopted ts, in residue" 17 p2;
  Runtime.Manager.decide_abort mgr b2 ~prepared:p2

(* ---------------- in-flight overflow + allocation races ------------ *)

(* More than 64 simultaneous in-flight commits spill past the slot array
   into the overflow list; the watermark must track overflow pins
   exactly like slot pins through claim (sentinel), publish and retire. *)
let test_overflow_pins_hold_watermark () =
  let mgr = Runtime.Manager.create () in
  let n = 70 in
  let pins =
    List.init n (fun _ ->
        let b = Runtime.Txn_rt.fresh () in
        (b, Runtime.Manager.prepare mgr b ~gtxn:(Runtime.Txn_rt.id b)))
  in
  check_int "watermark pinned below the oldest in-flight ts" 0
    (Runtime.Manager.stable_time mgr);
  List.iteri
    (fun i (b, ts) ->
      Runtime.Manager.decide_abort mgr b ~prepared:ts;
      check_int
        (Printf.sprintf "watermark after retiring ts %d" ts)
        (i + 1)
        (Runtime.Manager.stable_time mgr))
    pins

(* The overflow claim-visibility race: a committer past the 64 slots
   used to be invisible to [stable_time] between its claim and its
   publish, so the scan could return a watermark at or above a
   drawn-but-undistributed timestamp.  Four domains keep 20 pins each in
   flight (80 > 64, so claims constantly cross the overflow boundary)
   and assert, while their own pin is live, that the watermark stays
   strictly below it. *)
let test_overflow_claim_visibility_multicore () =
  let mgr = Runtime.Manager.create () in
  let violations = Atomic.make 0 in
  let workers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 25 do
              let pins =
                List.init 20 (fun _ ->
                    let b = Runtime.Txn_rt.fresh () in
                    let ts =
                      Runtime.Manager.prepare mgr b ~gtxn:(Runtime.Txn_rt.id b)
                    in
                    if Runtime.Manager.stable_time mgr >= ts then
                      Atomic.incr violations;
                    (b, ts))
              in
              List.iter
                (fun (b, ts) -> Runtime.Manager.decide_abort mgr b ~prepared:ts)
                pins
            done))
  in
  List.iter Domain.join workers;
  check_int "stable_time never reached a live pin" 0 (Atomic.get violations)

(* The stale-[observed] draw race: a drawer stalled between its pre-draw
   [observed] read and its fetch-and-add used to issue a count a foreign
   adoption had meanwhile covered — at or below a watermark a concurrent
   scan had already reported from the raised [observed].  The invariant:
   every watermark ever returned stays strictly below every timestamp
   issued afterwards.  A monitor keeps the largest watermark seen;
   workers check their freshly prepared timestamp against it while the
   pin is live.  A third of the branches adopt a decided timestamp far
   above the stripe (in a residue class the stripe never issues, so
   pins stay unique) — the Lamport merge + retire that opens the
   window. *)
let test_draw_revalidates_observed_multicore () =
  let mgr = Runtime.Manager.create ~stripe:(1, 4) () in
  let max_seen = Atomic.make 0 in
  let rec record w =
    let cur = Atomic.get max_seen in
    if w > cur && not (Atomic.compare_and_set max_seen cur w) then record w
  in
  let stop = Atomic.make false in
  let monitor =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          record (Runtime.Manager.stable_time mgr);
          Domain.cpu_relax ()
        done)
  in
  let violations = Atomic.make 0 in
  let workers =
    List.init 4 (fun w ->
        Domain.spawn (fun () ->
            for i = 1 to 150 do
              let b = Runtime.Txn_rt.fresh () in
              let prepared =
                Runtime.Manager.prepare mgr b ~gtxn:(Runtime.Txn_rt.id b)
              in
              if Atomic.get max_seen >= prepared then Atomic.incr violations;
              if (w + i) mod 3 = 0 then
                Runtime.Manager.decide_commit mgr b ~prepared
                  ~ts:((4 * prepared) + 2)
              else Runtime.Manager.decide_abort mgr b ~prepared
            done))
  in
  List.iter Domain.join workers;
  Atomic.set stop true;
  Domain.join monitor;
  check_int "no watermark ever reached a later-issued timestamp" 0
    (Atomic.get violations)

(* ---------------- multi-domain allocation (satellite: 4-domain) ---- *)

let prop_striped_draws_multicore =
  QCheck2.Test.make
    ~name:"4-domain draws: residue class, uniqueness, monotone watermark" ~count:5
    QCheck2.Gen.(pair (0 -- 3) (20 -- 60))
    (fun (idx, per_domain) ->
      let mgr = Runtime.Manager.create ~stripe:(idx, 4) () in
      let stop = Atomic.make false in
      let monotone = Atomic.make true in
      (* The watermark, sampled concurrently with the committers, must
         never move backwards (snapshot readers poll it upwards). *)
      let monitor =
        Domain.spawn (fun () ->
            let last = ref (-1) in
            while not (Atomic.get stop) do
              let s = Runtime.Manager.stable_time mgr in
              if s < !last then Atomic.set monotone false;
              last := s;
              Domain.cpu_relax ()
            done)
      in
      let workers =
        List.init 4 (fun _ ->
            Domain.spawn (fun () ->
                List.init per_domain (fun _ ->
                    Runtime.Manager.commit_txn mgr (Runtime.Txn_rt.fresh ()))))
      in
      let per_worker = List.map Domain.join workers in
      Atomic.set stop true;
      Domain.join monitor;
      let all = List.concat per_worker in
      let residue_ok =
        List.for_all (fun ts -> ts > 0 && ts mod 4 = idx mod 4) all
      in
      let unique_ok =
        List.length (List.sort_uniq compare all) = List.length all
      in
      (* A domain's successive draws are strictly increasing (local
         monotonicity of the fetch-and-add allocation). *)
      let ascending_ok =
        List.for_all
          (fun tss -> List.sort compare tss = tss)
          per_worker
      in
      (* Everything committed and retired: the idle watermark now covers
         every issued timestamp. *)
      let final_ok =
        Runtime.Manager.stable_time mgr >= List.fold_left max 0 all
      in
      residue_ok && unique_ok && ascending_ok && final_ok && Atomic.get monotone)

(* ---------------- scheduler rendezvous ---------------- *)

let test_sched_park_and_wake () =
  let obj = Runtime.Txn_rt.fresh_object_key () in
  let ticket = Runtime.Sched.register ~obj ~txn:1 in
  let waker = Domain.spawn (fun () -> Runtime.Sched.notify ~obj) in
  (* The notify may land before the park; the pre-check makes that a
     fast [`Woken], not a stranded waiter. *)
  let r = Runtime.Sched.park ticket ~timeout:2.0 in
  Domain.join waker;
  check_bool "woken by the release" true (r = `Woken)

let test_sched_timeout_backstop () =
  let obj = Runtime.Txn_rt.fresh_object_key () in
  let ticket = Runtime.Sched.register ~obj ~txn:2 in
  let t0 = Unix.gettimeofday () in
  let r = Runtime.Sched.park ticket ~timeout:0.02 in
  let waited = Unix.gettimeofday () -. t0 in
  check_bool "timed out" true (r = `Timeout);
  check_bool "did not oversleep grossly" true (waited < 1.0);
  (* A timed-out (settled) waiter must not absorb the next release. *)
  Runtime.Sched.notify ~obj

let test_sched_cancel_is_inert () =
  let obj = Runtime.Txn_rt.fresh_object_key () in
  let ticket = Runtime.Sched.register ~obj ~txn:3 in
  Runtime.Sched.cancel ticket;
  (* The lazy sweep drops the cancelled waiter without delivering. *)
  Runtime.Sched.notify ~obj;
  let live = Runtime.Sched.register ~obj ~txn:4 in
  let waker = Domain.spawn (fun () -> Runtime.Sched.notify ~obj) in
  let r = Runtime.Sched.park live ~timeout:2.0 in
  Domain.join waker;
  check_bool "later waiter still wakes" true (r = `Woken)

(* Wake-ring wrap-around: a stolen slot left uncleared lets a stealer
   racing a claimed-but-not-yet-stored push on a later lap deliver the
   previous lap's dead waiter — and the fresh waiter is skipped until
   its park timeout.  Drive several laps of the 64-slot ring (5 waiters
   per notify: 4 inline + exactly one ring push) against a concurrent
   thief; every waiter must end up delivered. *)
let test_ring_wrap_steal_no_lost_waiter () =
  let obj = Runtime.Txn_rt.fresh_object_key () in
  let rounds = 500 in
  let per_round = 5 in
  let waiters = ref [] in
  let stop = Atomic.make false in
  let thief =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          if not (Runtime.Sched.help ()) then Domain.cpu_relax ()
        done)
  in
  for i = 1 to rounds do
    for j = 1 to per_round do
      waiters := Runtime.Sched.register ~obj ~txn:((i * 10) + j) :: !waiters
    done;
    Runtime.Sched.notify ~obj
  done;
  Atomic.set stop true;
  Domain.join thief;
  (* Drain what the thief left pending; afterwards every waiter must be
     in the signalled state, so its park returns [`Woken] immediately. *)
  while Runtime.Sched.help () do
    ()
  done;
  let woken =
    List.filter (fun w -> Runtime.Sched.park w ~timeout:0.001 = `Woken) !waiters
  in
  check_int "every waiter was delivered" (rounds * per_round) (List.length woken)

(* Park-slot aliasing: slots were keyed on the monotone domain id masked
   to the table size, so a long-lived domain and one spawned exactly 64
   domain-ids later shared a self-pipe — one parker's drain could eat
   the other's wake byte.  Slots are now leased per live domain: hold
   one domain alive, churn exactly 63 short-lived domains (the next
   spawn's id is 64 past the pinned one), and the latecomer must still
   get a distinct slot. *)
let test_park_slots_distinct_across_domain_churn () =
  let pinned_idx = Atomic.make (-1) in
  let release = Atomic.make false in
  let pinned =
    Domain.spawn (fun () ->
        Atomic.set pinned_idx (Runtime.Sched.domain_index ());
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done)
  in
  while Atomic.get pinned_idx < 0 do
    Domain.cpu_relax ()
  done;
  for _ = 1 to 63 do
    Domain.join (Domain.spawn (fun () -> ()))
  done;
  let late_idx = Domain.join (Domain.spawn (fun () -> Runtime.Sched.domain_index ())) in
  Atomic.set release true;
  Domain.join pinned;
  check_bool
    (Printf.sprintf "concurrently live domains own distinct park slots (%d vs %d)"
       (Atomic.get pinned_idx) late_idx)
    true
    (Atomic.get pinned_idx <> late_idx)

(* End to end: a transaction blocked on a lock is woken by the holder's
   commit well before its timeout backstop would fire. *)
let test_blocked_txn_woken_by_release () =
  let mgr = Runtime.Manager.create () in
  let q = QObj.create ~conflict:Q.conflict_rw () in
  let holder = Runtime.Txn_rt.fresh ~priority:1 () in
  (match QObj.try_invoke q holder (Q.Enq 1) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "holder's enq should succeed");
  let blocked =
    Domain.spawn (fun () ->
        (* Older than any fresh default priority?  No — make it young so
           wait-die says wait (holder priority 1 is oldest). *)
        Runtime.Manager.run mgr (fun txn -> QObj.invoke q txn (Q.Enq 2)))
  in
  (* Give the blocked transaction time to register and park. *)
  Unix.sleepf 0.05;
  Runtime.Txn_rt.commit holder 1;
  let r = Domain.join blocked in
  check_bool "blocked txn completed after release" true (r = Q.Ok)

let () =
  Alcotest.run "hotpath"
    [
      ( "backoff",
        [
          Alcotest.test_case "avalanche spreads congruent keys" `Quick
            test_jitter_spreads_congruent_keys;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_jitter_range_and_determinism ] );
      ( "wait-die",
        [
          Alcotest.test_case "refusal captures holder priority" `Quick
            test_conflict_carries_captured_priority;
          Alcotest.test_case "survives recycled holder id" `Quick
            test_wait_die_survives_recycled_holder_id;
          Alcotest.test_case "still dies on older holder" `Quick
            test_wait_die_still_dies_on_older_holder;
        ] );
      ( "stable-time",
        [
          Alcotest.test_case "striped idle watermark" `Quick test_striped_idle_watermark;
          Alcotest.test_case "default stripe unchanged" `Quick
            test_default_stripe_watermark_unchanged;
          Alcotest.test_case "prepared pin blocks watermark" `Quick
            test_prepared_pin_blocks_watermark;
          Alcotest.test_case "decided adoption advances stripe" `Quick
            test_decided_adoption_advances_stripe;
          Alcotest.test_case "overflow pins hold the watermark" `Quick
            test_overflow_pins_hold_watermark;
          Alcotest.test_case "overflow claims visible under contention" `Quick
            test_overflow_claim_visibility_multicore;
          Alcotest.test_case "draw revalidates observed under adoption" `Quick
            test_draw_revalidates_observed_multicore;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_striped_draws_multicore ] );
      ( "scheduler",
        [
          Alcotest.test_case "park and wake" `Quick test_sched_park_and_wake;
          Alcotest.test_case "timeout backstop" `Quick test_sched_timeout_backstop;
          Alcotest.test_case "cancel is inert" `Quick test_sched_cancel_is_inert;
          Alcotest.test_case "ring wrap loses no waiter" `Quick
            test_ring_wrap_steal_no_lost_waiter;
          Alcotest.test_case "park slots distinct across domain churn" `Quick
            test_park_slots_distinct_across_domain_churn;
          Alcotest.test_case "blocked txn woken by release" `Quick
            test_blocked_txn_woken_by_release;
        ] );
    ]
