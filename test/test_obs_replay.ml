(* Tests for the observability layer (lib/obs) and the trace-replay
   atomicity path.

   The load-bearing property: for any concurrent run, the object-local
   history reconstructed from the generic trace ring (ints + interned
   payload codes) is exactly the history the engine records with
   [record:true], and the replay checker accepts it — so hybrid
   atomicity can be validated from a trace captured in production, with
   no typed recording hook on the object. *)

module Q = Adt.Fifo_queue
module A = Adt.Account
module QObj = Runtime.Atomic_obj.Make (Q)
module AObj = Runtime.Atomic_obj.Make (A)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- metrics registry ---------------- *)

let test_counter_basics () =
  let c = Obs.Metrics.counter "test.obs.counter" in
  let v0 = Obs.Metrics.value c in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  check_int "incr + add" (v0 + 5) (Obs.Metrics.value c);
  (* the registry deduplicates by name: the same counter comes back *)
  let c' = Obs.Metrics.counter "test.obs.counter" in
  Obs.Metrics.incr c';
  check_int "same cell" (v0 + 6) (Obs.Metrics.value c)

let test_counter_disabled_is_noop () =
  let c = Obs.Metrics.counter "test.obs.gated" in
  let v0 = Obs.Metrics.value c in
  Obs.Control.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Obs.Control.set_enabled true)
    (fun () -> Obs.Metrics.incr c);
  check_int "not counted while disabled" v0 (Obs.Metrics.value c);
  Obs.Metrics.incr c;
  check_int "counted again" (v0 + 1) (Obs.Metrics.value c)

let test_counters_from_domains () =
  let c = Obs.Metrics.counter "test.obs.sharded" in
  let v0 = Obs.Metrics.value c in
  let workers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () -> for _ = 1 to 1000 do Obs.Metrics.incr c done))
  in
  List.iter Domain.join workers;
  check_int "no lost updates" (v0 + 4000) (Obs.Metrics.value c)

let test_histogram_basics () =
  let h = Obs.Metrics.histogram ~bounds:[| 1e-3; 1e-2 |] "test.obs.hist" in
  List.iter (Obs.Metrics.observe h) [ 5e-4; 5e-4; 5e-3; 5e-2 ];
  check_int "count" 4 (Obs.Metrics.count h);
  check_bool "sum" true (abs_float (Obs.Metrics.sum h -. 0.056) < 1e-6);
  (match Obs.Metrics.buckets h with
  | [ (Some _, a); (Some _, b); (None, c) ] ->
    check_int "le 1ms" 2 a;
    check_int "le 10ms" 1 b;
    check_int "overflow" 1 c
  | _ -> Alcotest.fail "three buckets expected");
  Alcotest.check_raises "name collision"
    (Invalid_argument "Obs.Metrics.counter: \"test.obs.hist\" is a histogram")
    (fun () -> ignore (Obs.Metrics.counter "test.obs.hist"))

(* ---------------- trace ring ---------------- *)

let test_ring_wrap () =
  let tr = Obs.Trace.create ~capacity:8 () in
  for k = 0 to 19 do
    Obs.Trace.emit tr ~obj:1 ~txn:k (Obs.Trace.Commit k)
  done;
  check_int "dropped" 12 (Obs.Trace.dropped tr);
  let es = Obs.Trace.entries tr in
  check_int "window size" 8 (List.length es);
  Alcotest.(check (list int))
    "surviving window is the newest suffix, oldest first"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.map (fun e -> e.Obs.Trace.seq) es);
  Obs.Trace.clear tr;
  check_int "cleared" 0 (List.length (Obs.Trace.entries tr));
  check_int "dropped reset" 0 (Obs.Trace.dropped tr)

let test_ring_concurrent_writers () =
  let tr = Obs.Trace.create ~capacity:(1 lsl 14) () in
  let per = 1000 in
  let workers =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for k = 1 to per do
              Obs.Trace.emit tr ~obj:d ~txn:k Obs.Trace.Lock_granted
            done))
  in
  List.iter Domain.join workers;
  let es = Obs.Trace.entries tr in
  check_int "all entries survive" (4 * per) (List.length es);
  check_int "none dropped" 0 (Obs.Trace.dropped tr);
  check_bool "seqs strictly increasing" true
    (let rec ok = function
       | a :: (b :: _ as rest) -> a.Obs.Trace.seq < b.Obs.Trace.seq && ok rest
       | _ -> true
     in
     ok es)

(* ---------------- trace replay: random concurrent runs ----------------

   Each qcheck case is a real 2-domain run through the manager against a
   single object carrying both a [record:true] hook (the engine's typed
   account of the history) and a dedicated trace ring (the generic
   observability account).  The two reconstructions must coincide
   exactly, and the replay checker must accept the traced history. *)

let gen_queue_scripts =
  QCheck.Gen.(
    let op = oneof [ map (fun v -> Q.Enq v) (int_range 1 3); return Q.Deq ] in
    let txn = list_size (int_range 1 3) op in
    let script = list_size (int_range 1 4) txn in
    pair script script)

let print_queue_scripts (a, b) =
  let pr_op = function Q.Enq v -> Printf.sprintf "Enq %d" v | Q.Deq -> "Deq" in
  let pr_script s =
    String.concat "; "
      (List.map (fun ops -> "[" ^ String.concat " " (List.map pr_op ops) ^ "]") s)
  in
  Printf.sprintf "d0: %s | d1: %s" (pr_script a) (pr_script b)

let run_queue (s0, s1) =
  let tr = Obs.Trace.create ~capacity:(1 lsl 12) () in
  let mgr = Runtime.Manager.create () in
  let q = QObj.create ~record:true ~trace:tr ~conflict:Q.conflict_hybrid () in
  (* Seed one committed enqueue per dequeue in the scripts, so no
     interleaving can block on an empty queue (enqueues only add). *)
  let deqs =
    List.length (List.filter (fun i -> i = Q.Deq) (List.concat (s0 @ s1)))
  in
  if deqs > 0 then
    Runtime.Manager.run mgr (fun txn ->
        for k = 1 to deqs do
          ignore (QObj.invoke q txn (Q.Enq (k mod 3)))
        done);
  let worker script =
    Domain.spawn (fun () ->
        List.iter
          (fun ops ->
            Runtime.Manager.run mgr (fun txn ->
                List.iter (fun i -> ignore (QObj.invoke q txn i)) ops))
          script)
  in
  List.iter Domain.join (List.map worker [ s0; s1 ]);
  q

let prop_queue_replay scripts =
  let q = run_queue scripts in
  let recorded = QObj.history q in
  let replayed = QObj.replayed_history q in
  if replayed <> recorded then
    QCheck.Test.fail_report "trace-reconstructed history differs from recorded";
  (match QObj.replay_check q with
  | Ok () -> ()
  | Error e -> QCheck.Test.fail_reportf "replay check rejected the run: %s" e);
  (* The exponential online checker only on the smallest runs. *)
  let s = QObj.stats q in
  if s.QObj.commits <= 5 then
    match QObj.replay_check ~online:true q with
    | Ok () -> true
    | Error e -> QCheck.Test.fail_reportf "online check rejected the run: %s" e
  else true

let test_queue_replay =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:120 ~name:"queue: traced run replays to the recorded history"
       (QCheck.make ~print:print_queue_scripts gen_queue_scripts)
       prop_queue_replay)

let gen_account_scripts =
  QCheck.Gen.(
    let op =
      frequency
        [
          (4, map (fun v -> A.Credit v) (int_range 1 5));
          (4, map (fun v -> A.Debit v) (int_range 1 5));
          (1, return (A.Post 1));
        ]
    in
    let txn = list_size (int_range 1 3) op in
    let script = list_size (int_range 1 4) txn in
    pair script script)

let print_account_scripts (a, b) =
  let pr_op = function
    | A.Credit v -> Printf.sprintf "Credit %d" v
    | A.Debit v -> Printf.sprintf "Debit %d" v
    | A.Post v -> Printf.sprintf "Post %d" v
  in
  let pr_script s =
    String.concat "; "
      (List.map (fun ops -> "[" ^ String.concat " " (List.map pr_op ops) ^ "]") s)
  in
  Printf.sprintf "d0: %s | d1: %s" (pr_script a) (pr_script b)

let run_account (s0, s1) =
  let tr = Obs.Trace.create ~capacity:(1 lsl 12) () in
  let mgr = Runtime.Manager.create () in
  let acc = AObj.create ~record:true ~trace:tr ~conflict:A.conflict_hybrid () in
  Runtime.Manager.run mgr (fun txn -> ignore (AObj.invoke acc txn (A.Credit 10)));
  let worker script =
    Domain.spawn (fun () ->
        List.iter
          (fun ops ->
            Runtime.Manager.run mgr (fun txn ->
                List.iter (fun i -> ignore (AObj.invoke acc txn i)) ops))
          script)
  in
  List.iter Domain.join (List.map worker [ s0; s1 ]);
  acc

let prop_account_replay scripts =
  let acc = run_account scripts in
  let recorded = AObj.history acc in
  let replayed = AObj.replayed_history acc in
  if replayed <> recorded then
    QCheck.Test.fail_report "trace-reconstructed history differs from recorded";
  match AObj.replay_check acc with
  | Ok () -> true
  | Error e -> QCheck.Test.fail_reportf "replay check rejected the run: %s" e

let test_account_replay =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:120
       ~name:"account: traced run replays to the recorded history"
       (QCheck.make ~print:print_account_scripts gen_account_scripts)
       prop_account_replay)

(* ---------------- replay: deterministic cases ---------------- *)

let test_replay_known_run () =
  let tr = Obs.Trace.create ~capacity:256 () in
  let mgr = Runtime.Manager.create () in
  let q = QObj.create ~record:true ~trace:tr ~conflict:Q.conflict_hybrid () in
  Runtime.Manager.run mgr (fun txn ->
      ignore (QObj.invoke q txn (Q.Enq 7));
      ignore (QObj.invoke q txn Q.Deq));
  let h = QObj.replayed_history q in
  check_int "five events" 5 (List.length h);
  check_bool "equals recorded" true (h = QObj.history q);
  check_bool "accepted" true (QObj.replay_check ~online:true q = Ok ());
  (* the ring kept protocol-progress annotations the history omits *)
  let grants =
    List.filter
      (fun e -> e.Obs.Trace.event = Obs.Trace.Lock_granted)
      (Obs.Trace.entries tr)
  in
  check_int "one grant per operation" 2 (List.length grants)

let test_replay_ignores_other_objects () =
  let tr = Obs.Trace.create ~capacity:256 () in
  let mgr = Runtime.Manager.create () in
  let q1 = QObj.create ~trace:tr ~conflict:Q.conflict_hybrid () in
  let q2 = QObj.create ~record:true ~trace:tr ~conflict:Q.conflict_hybrid () in
  Runtime.Manager.run mgr (fun txn ->
      ignore (QObj.invoke q1 txn (Q.Enq 1));
      ignore (QObj.invoke q2 txn (Q.Enq 2)));
  Runtime.Manager.run mgr (fun txn -> ignore (QObj.invoke q1 txn Q.Deq));
  check_bool "q2 sees only its own events" true
    (QObj.replayed_history q2 = QObj.history q2);
  check_bool "q2 accepted" true (QObj.replay_check q2 = Ok ());
  check_int "distinct keys" 1 (abs (QObj.key q2 - QObj.key q1))

let () =
  Alcotest.run "obs-replay"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "disabled is no-op" `Quick test_counter_disabled_is_noop;
          Alcotest.test_case "sharded counters under domains" `Quick
            test_counters_from_domains;
          Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
        ] );
      ( "trace-ring",
        [
          Alcotest.test_case "wrap and drop accounting" `Quick test_ring_wrap;
          Alcotest.test_case "concurrent writers" `Quick test_ring_concurrent_writers;
        ] );
      ( "replay",
        [
          Alcotest.test_case "known run" `Quick test_replay_known_run;
          Alcotest.test_case "filters by object key" `Quick
            test_replay_ignores_other_objects;
          test_queue_replay;
          test_account_replay;
        ] );
    ]
