(* Crash-recovery property, every ADT x every kill point: cut the log
   of a finished durable run at each deterministic kill point and check
   that recovery rebuilds exactly the committed prefix of that image —
   by two independent paths (checkpointed redo vs full replay from the
   initial state), compared up to observational equivalence
   (equal_state set equality, Definition 25). *)

module type TESTABLE = sig
  include Spec.Adt_sig.BOUNDED

  val codec : (inv, res, state) Wal.Codec.t
end

let temp_wal () =
  let f = Filename.temp_file "hybrid-cc-crash" ".wal" in
  at_exit (fun () -> try Sys.remove f with Sys_error _ -> ());
  f

module Crash_prop (X : TESTABLE) = struct
  module O = Runtime.Atomic_obj.Make (X)
  module R = Wal.Recover.Make (X)

  let invs = List.sort_uniq compare (List.map fst X.universe)
  let n_invs = List.length invs

  (* Sequential durable run driven by an LCG: [txns] transactions of up
     to [ops] operations each, with every third transaction aborted
     midway to exercise Abort records and intention discarding.  The
     rewrite threshold is effectively infinite so every record survives
     for the reference replay; everything-conflicts serialization is
     irrelevant sequentially but keeps lock bookkeeping honest. *)
  let run_workload ~seed ~txns ~ops path =
    let w = Wal.Log.create ~fsync:false ~compact_threshold:max_int path in
    let mgr = Runtime.Manager.create ~wal:w () in
    let o = O.create ~wal:(w, X.codec) ~conflict:(fun _ _ -> true) () in
    let lcg = ref (1 + abs seed) in
    let next () =
      lcg := 1 + (!lcg * 48271 mod 0x7fffffff);
      !lcg
    in
    for t = 1 to txns do
      let result =
        Runtime.Manager.run_once mgr (fun txn ->
            for _ = 1 to 1 + (next () mod ops) do
              (* Skip invocations with no legal response (partial ops). *)
              let start = next () mod n_invs in
              let rec attempt tries =
                if tries < n_invs then
                  match O.try_invoke o txn (List.nth invs ((start + tries) mod n_invs)) with
                  | Ok _ -> ()
                  | Error `Blocked -> attempt (tries + 1)
                  | Error (`Conflict _) ->
                    Alcotest.fail "sequential run cannot see a lock conflict"
              in
              attempt 0
            done;
            if t mod 3 = 0 then Runtime.Manager.abort_in ~reason:"crash-test abort" ())
      in
      ignore (result : (unit, string) result)
    done;
    let live_states = O.committed_states o in
    Wal.Log.close w;
    (O.name o, live_states)

  let check ~seed ~txns ~ops =
    let path = temp_wal () in
    let name, live_states = run_workload ~seed ~txns ~ops path in
    let raw = Wal.Log.read_file path in
    let records, tail = Wal.Log.parse raw in
    if tail <> Wal.Log.Clean then Alcotest.fail "finished run left a torn log";
    (* Clean image: recovery must equal the live object's final states. *)
    (match R.recover ~obj:name records with
    | Error e -> Alcotest.fail (X.name ^ ": " ^ e)
    | Ok oc ->
      if not (R.equal_states oc.R.states live_states) then
        Alcotest.fail
          (Format.asprintf "%s: clean recovery %a but live object %a" X.name R.pp_states
             oc.R.states R.pp_states live_states));
    (* Every kill point: checkpointed recovery = committed-prefix replay. *)
    let kps = Wal.Crash.kill_points raw in
    List.iter
      (fun kp ->
        let recs, _ = Wal.Log.parse (Wal.Crash.image raw kp) in
        match (R.recover ~obj:name recs, R.reference ~obj:name recs) with
        | Error e, _ | _, Error e ->
          Alcotest.fail (Format.asprintf "%s at %a: %s" X.name Wal.Crash.pp_kill_point kp e)
        | Ok oc, Ok ref_states ->
          if not (R.equal_states oc.R.states ref_states) then
            Alcotest.fail
              (Format.asprintf "%s at %a: recovered %a, committed prefix %a" X.name
                 Wal.Crash.pp_kill_point kp R.pp_states oc.R.states R.pp_states ref_states))
      kps;
    List.length kps

  let qcheck_test =
    QCheck2.Test.make
      ~name:(Printf.sprintf "recover = committed prefix at every kill point (%s)" X.name)
      ~count:8
      QCheck2.Gen.(int_range 0 10_000)
      (fun seed ->
        ignore (check ~seed ~txns:12 ~ops:4 : int);
        true)
end

let tests =
  let prop (module X : TESTABLE) =
    let module P = Crash_prop (X) in
    QCheck_alcotest.to_alcotest P.qcheck_test
  in
  List.map prop
    [
      (module Adt.Fifo_queue : TESTABLE);
      (module Adt.Semiqueue);
      (module Adt.Account);
      (module Adt.Counter);
      (module Adt.Directory);
      (module Adt.File_adt);
      (module Adt.Log_adt);
      (module Adt.Bounded_buffer);
    ]

let () = Alcotest.run "wal-crash" [ ("kill-points", tests) ]
