(* Crash-recovery property, every ADT x every kill point: cut the log
   of a finished durable run at each deterministic kill point and check
   that recovery rebuilds exactly the committed prefix of that image —
   by two independent paths (checkpointed redo vs full replay from the
   initial state), compared up to observational equivalence
   (equal_state set equality, Definition 25). *)

module type TESTABLE = sig
  include Spec.Adt_sig.BOUNDED

  val codec : (inv, res, state) Wal.Codec.t
end

let temp_wal () =
  let f = Filename.temp_file "hybrid-cc-crash" ".wal" in
  at_exit (fun () -> try Sys.remove f with Sys_error _ -> ());
  f

module Crash_prop (X : TESTABLE) = struct
  module O = Runtime.Atomic_obj.Make (X)
  module R = Wal.Recover.Make (X)

  let invs = List.sort_uniq compare (List.map fst X.universe)
  let n_invs = List.length invs

  (* Sequential durable run driven by an LCG: [txns] transactions of up
     to [ops] operations each, with every third transaction aborted
     midway to exercise Abort records and intention discarding.  The
     rewrite threshold is effectively infinite so every record survives
     for the reference replay; everything-conflicts serialization is
     irrelevant sequentially but keeps lock bookkeeping honest. *)
  let run_workload ~seed ~txns ~ops path =
    let w = Wal.Log.create ~fsync:false ~compact_threshold:max_int path in
    let mgr = Runtime.Manager.create ~wal:w () in
    let o = O.create ~wal:(w, X.codec) ~conflict:(fun _ _ -> true) () in
    let lcg = ref (1 + abs seed) in
    let next () =
      lcg := 1 + (!lcg * 48271 mod 0x7fffffff);
      !lcg
    in
    for t = 1 to txns do
      let result =
        Runtime.Manager.run_once mgr (fun txn ->
            for _ = 1 to 1 + (next () mod ops) do
              (* Skip invocations with no legal response (partial ops). *)
              let start = next () mod n_invs in
              let rec attempt tries =
                if tries < n_invs then
                  match O.try_invoke o txn (List.nth invs ((start + tries) mod n_invs)) with
                  | Ok _ -> ()
                  | Error `Blocked -> attempt (tries + 1)
                  | Error (`Conflict _) ->
                    Alcotest.fail "sequential run cannot see a lock conflict"
              in
              attempt 0
            done;
            if t mod 3 = 0 then Runtime.Manager.abort_in ~reason:"crash-test abort" ())
      in
      ignore (result : (unit, string) result)
    done;
    let live_states = O.committed_states o in
    Wal.Log.close w;
    (O.name o, live_states)

  let check ~seed ~txns ~ops =
    let path = temp_wal () in
    let name, live_states = run_workload ~seed ~txns ~ops path in
    let raw = Wal.Log.read_file path in
    let records, tail = Wal.Log.parse raw in
    if tail <> Wal.Log.Clean then Alcotest.fail "finished run left a torn log";
    (* Clean image: recovery must equal the live object's final states. *)
    (match R.recover ~obj:name records with
    | Error e -> Alcotest.fail (X.name ^ ": " ^ e)
    | Ok oc ->
      if not (R.equal_states oc.R.states live_states) then
        Alcotest.fail
          (Format.asprintf "%s: clean recovery %a but live object %a" X.name R.pp_states
             oc.R.states R.pp_states live_states));
    (* Every kill point: checkpointed recovery = committed-prefix replay. *)
    let kps = Wal.Crash.kill_points raw in
    List.iter
      (fun kp ->
        let recs, _ = Wal.Log.parse (Wal.Crash.image raw kp) in
        match (R.recover ~obj:name recs, R.reference ~obj:name recs) with
        | Error e, _ | _, Error e ->
          Alcotest.fail (Format.asprintf "%s at %a: %s" X.name Wal.Crash.pp_kill_point kp e)
        | Ok oc, Ok ref_states ->
          if not (R.equal_states oc.R.states ref_states) then
            Alcotest.fail
              (Format.asprintf "%s at %a: recovered %a, committed prefix %a" X.name
                 Wal.Crash.pp_kill_point kp R.pp_states oc.R.states R.pp_states ref_states))
      kps;
    List.length kps

  let qcheck_test =
    QCheck2.Test.make
      ~name:(Printf.sprintf "recover = committed prefix at every kill point (%s)" X.name)
      ~count:8
      QCheck2.Gen.(int_range 0 10_000)
      (fun seed ->
        ignore (check ~seed ~txns:12 ~ops:4 : int);
        true)
end

let tests =
  let prop (module X : TESTABLE) =
    let module P = Crash_prop (X) in
    QCheck_alcotest.to_alcotest P.qcheck_test
  in
  List.map prop
    [
      (module Adt.Fifo_queue : TESTABLE);
      (module Adt.Semiqueue);
      (module Adt.Account);
      (module Adt.Counter);
      (module Adt.Directory);
      (module Adt.File_adt);
      (module Adt.Log_adt);
      (module Adt.Bounded_buffer);
    ]

(* ---- partitioned objects: per-cell intentions across one log ----

   A partitioned object writes its cells into the same log as distinct
   sub-objects ("<name>/cell<k>", each with its own Object / Intention /
   Checkpoint records carrying the cell key), and one transaction's
   intentions routinely span several cells — a broadcast Post, a
   draining Debit sweep, a multi-key directory transaction.  The
   property is the same as above but quantified per cell at every kill
   point: checkpointed redo of each cell equals that cell's
   committed-prefix replay, so a crash mid-multi-cell-transaction
   either commits the transaction in every cell or discards it in every
   cell (the commit record is shared).  A cell whose Object record is
   past the cut recovers to the initial state on both paths, which is
   exactly what the live system would rebuild.  Both group-commit modes
   are part of the generated input. *)

module Crash_part (X : TESTABLE) = struct
  module R = Wal.Recover.Make (X)

  (* [run] drives a sequential durable workload against a partitioned
     object on a fresh log and returns each materialized cell's (name,
     live committed states). *)
  let check ~name ~run ~group_commit ~seed =
    let path = temp_wal () in
    let live = run ~group_commit ~seed path in
    let raw = Wal.Log.read_file path in
    let records, tail = Wal.Log.parse raw in
    if tail <> Wal.Log.Clean then Alcotest.fail "finished run left a torn log";
    List.iter
      (fun (cell, states) ->
        match R.recover ~obj:cell records with
        | Error e -> Alcotest.fail (name ^ ": " ^ e)
        | Ok oc ->
          if not (R.equal_states oc.R.states states) then
            Alcotest.fail
              (Format.asprintf "%s: clean recovery of %s %a but live cell %a" name cell
                 R.pp_states oc.R.states R.pp_states states))
      live;
    let kps = Wal.Crash.kill_points raw in
    List.iter
      (fun kp ->
        let recs, _ = Wal.Log.parse (Wal.Crash.image raw kp) in
        List.iter
          (fun (cell, _) ->
            match (R.recover ~obj:cell recs, R.reference ~obj:cell recs) with
            | Error e, _ | _, Error e ->
              Alcotest.fail
                (Format.asprintf "%s/%s at %a: %s" name cell Wal.Crash.pp_kill_point kp e)
            | Ok oc, Ok ref_states ->
              if not (R.equal_states oc.R.states ref_states) then
                Alcotest.fail
                  (Format.asprintf "%s/%s at %a: recovered %a, committed prefix %a" name
                     cell Wal.Crash.pp_kill_point kp R.pp_states oc.R.states R.pp_states
                     ref_states))
          live)
      kps;
    List.length kps

  let qcheck_test ~name ~run =
    QCheck2.Test.make
      ~name:(Printf.sprintf "per-cell recover = committed prefix at every kill point (%s)" name)
      ~count:6
      QCheck2.Gen.(pair (int_range 0 10_000) bool)
      (fun (seed, group_commit) ->
        ignore (check ~name ~run ~group_commit ~seed : int);
        true)
end

module CPD = Crash_part (Adt.Directory)
module CPA = Crash_part (Adt.Account)

let lcg_stream seed =
  let lcg = ref (1 + abs seed) in
  fun () ->
    lcg := 1 + (!lcg * 48271 mod 0x7fffffff);
    !lcg

let run_pdir ~group_commit ~seed path =
  let w = Wal.Log.create ~group_commit ~fsync:false ~compact_threshold:max_int path in
  let mgr = Runtime.Manager.create ~wal:w () in
  let d = Part.Pdir.create ~wal:(w, Adt.Directory.codec) ~cells:4 () in
  let next = lcg_stream seed in
  for t = 1 to 12 do
    ignore
      (Runtime.Manager.run_once mgr (fun txn ->
           (* 3-5 keys per transaction, spreading intentions over cells. *)
           for _ = 1 to 3 + (next () mod 3) do
             let key = next () mod 8 in
             let inv =
               match next () mod 3 with
               | 0 -> Adt.Directory.Insert key
               | 1 -> Adt.Directory.Remove key
               | _ -> Adt.Directory.Member key
             in
             ignore (Part.Pdir.invoke d txn inv)
           done;
           if t mod 3 = 0 then Runtime.Manager.abort_in ~reason:"crash-test abort" ())
        : (unit, string) result)
  done;
  let live =
    List.map
      (fun (_, o) -> (Part.Pdir.O.name o, Part.Pdir.O.committed_states o))
      (Part.Pdir.C.created (Part.Pdir.cells d))
  in
  Wal.Log.close w;
  live

let run_paccount ~group_commit ~seed path =
  let w = Wal.Log.create ~group_commit ~fsync:false ~compact_threshold:max_int path in
  let mgr = Runtime.Manager.create ~wal:w () in
  let a = Part.Paccount.create ~wal:(w, Adt.Account.codec) ~cells:3 () in
  let next = lcg_stream seed in
  Runtime.Manager.run mgr (fun txn ->
      ignore (Part.Paccount.invoke a txn (Adt.Account.Credit 40)));
  for t = 1 to 12 do
    ignore
      (Runtime.Manager.run_once mgr (fun txn ->
           for _ = 1 to 2 + (next () mod 2) do
             let amount = 1 + (next () mod 6) in
             let inv =
               match next () mod 6 with
               (* Posts broadcast to every cell and big debits sweep, so
                  most transactions carry multi-cell intentions. *)
               | 0 -> Adt.Account.Post 1
               | 1 | 2 -> Adt.Account.Credit amount
               | _ -> Adt.Account.Debit (2 * amount)
             in
             ignore (Part.Paccount.invoke a txn inv)
           done;
           if t mod 3 = 0 then Runtime.Manager.abort_in ~reason:"crash-test abort" ())
        : (unit, string) result)
  done;
  let live =
    List.map
      (fun (_, o) -> (Part.Paccount.O.name o, Part.Paccount.O.committed_states o))
      (Part.Paccount.C.created (Part.Paccount.cells a))
  in
  Wal.Log.close w;
  live

let partitioned_tests =
  [
    QCheck_alcotest.to_alcotest (CPD.qcheck_test ~name:"pdir" ~run:run_pdir);
    QCheck_alcotest.to_alcotest (CPA.qcheck_test ~name:"paccount" ~run:run_paccount);
  ]

let () =
  Alcotest.run "wal-crash"
    [ ("kill-points", tests); ("kill-points-partitioned", partitioned_tests) ]
