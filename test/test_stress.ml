(* Multi-domain stress test of one atomic object, with full observability
   reconciliation: every account of the run — the object's own counters,
   the manager's outcome stats, the metrics registry, the trace ring,
   and the replay-reconstructed history — must agree with the others. *)

module A = Adt.Account
module AObj = Runtime.Atomic_obj.Make (A)
module HA = Model.History.Make (A)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let domains = 4
let txns_per_domain = 60

let ev_is p e = p e.Obs.Trace.event

let test_stress_account () =
  Obs.Control.set_enabled true;
  let tr = Obs.Trace.create ~capacity:(1 lsl 18) () in
  let mgr = Runtime.Manager.create () in
  let acc = AObj.create ~trace:tr ~conflict:A.conflict_hybrid () in
  let counters_before = Obs.Metrics.counters () in
  (* Mixed workload: mostly credit+debit transactions, occasional posts
     (kept rare: each Post 1 doubles the balance in the exact integer
     model). *)
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for k = 1 to txns_per_domain do
              Runtime.Manager.run mgr (fun txn ->
                  if (d + (5 * k)) mod 60 = 0 then
                    ignore (AObj.invoke acc txn (A.Post 1))
                  else begin
                    ignore (AObj.invoke acc txn (A.Credit (1 + (k mod 7))));
                    ignore (AObj.invoke acc txn (A.Debit (1 + ((d + k) mod 5))))
                  end)
            done))
  in
  List.iter Domain.join workers;
  let s = AObj.stats acc in
  let m = Runtime.Manager.stats mgr in

  (* -- transaction-level reconciliation: the object participates in
        every attempt (each body invokes at least once), so the object's
        commit/abort counts are the manager's. -- *)
  check_int "all transactions committed" (domains * txns_per_domain)
    m.Runtime.Manager.committed;
  check_int "manager attempts reconcile" m.Runtime.Manager.started
    (m.Runtime.Manager.committed + m.Runtime.Manager.aborted);
  check_int "object commits = manager commits" m.Runtime.Manager.committed s.AObj.commits;
  check_int "object aborts = manager aborts" m.Runtime.Manager.aborted s.AObj.aborts;

  (* -- trace-level reconciliation: the ring saw exactly what the
        counters counted. -- *)
  check_int "ring did not wrap" 0 (Obs.Trace.dropped tr);
  let es = Obs.Trace.entries tr in
  let count p = List.length (List.filter (ev_is p) es) in
  check_int "trace commits" s.AObj.commits
    (count (function Obs.Trace.Commit _ -> true | _ -> false));
  check_int "trace aborts" s.AObj.aborts
    (count (function Obs.Trace.Abort -> true | _ -> false));
  check_int "trace responses = recorded operations" s.AObj.invocations
    (count (function Obs.Trace.Respond _ -> true | _ -> false));
  check_int "trace grants = recorded operations" s.AObj.invocations
    (count (function Obs.Trace.Lock_granted -> true | _ -> false));
  check_int "trace refusals = conflict counter" s.AObj.conflicts
    (count (function Obs.Trace.Lock_refused _ -> true | _ -> false));
  check_int "trace blocked = blocked counter" s.AObj.blocked
    (count (function Obs.Trace.Blocked -> true | _ -> false));
  (match
     List.rev
       (List.filter_map
          (fun e ->
            match e.Obs.Trace.event with Obs.Trace.Forgotten n -> Some n | _ -> None)
          es)
   with
  | last :: _ -> check_int "last fold event = forgotten counter" s.AObj.forgotten last
  | [] -> check_int "nothing folded" 0 s.AObj.forgotten);

  (* -- metrics-level reconciliation: registry deltas match both. -- *)
  let get name l = Option.value ~default:0 (List.assoc_opt name l) in
  let counters_after = Obs.Metrics.counters () in
  let delta name = get name counters_after - get name counters_before in
  check_int "metric obj.commits" s.AObj.commits (delta "obj.commits");
  check_int "metric obj.aborts" s.AObj.aborts (delta "obj.aborts");
  check_int "metric obj.invocations" s.AObj.invocations (delta "obj.invocations");
  check_int "metric obj.conflicts" s.AObj.conflicts (delta "obj.conflicts");
  check_int "metric obj.forgotten" s.AObj.forgotten (delta "obj.forgotten");
  check_int "metric txn.attempts" m.Runtime.Manager.started (delta "txn.attempts");
  check_int "metric txn.commits" m.Runtime.Manager.committed (delta "txn.commits");
  check_int "metric txn.aborts" m.Runtime.Manager.aborted (delta "txn.aborts");
  check_int "every abort is a wait-die death or a give-up" m.Runtime.Manager.aborted
    (delta "retry.wait_die_deaths" + delta "retry.give_ups");

  (* -- history-level reconciliation: the replay-reconstructed history
        is hybrid atomic, and replaying its committed transactions in
        timestamp order independently reproduces the object's final
        committed state. -- *)
  (match AObj.replay_check acc with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("replay check rejected the stress run: " ^ e));
  let h = AObj.replayed_history acc in
  check_int "history commits" s.AObj.commits (List.length (HA.committed h));
  let in_ts_order =
    HA.committed h
    |> List.filter_map (fun q -> Option.map (fun ts -> (ts, q)) (HA.timestamp_of h q))
    |> List.sort compare |> List.map snd
  in
  let final_states = HA.Seq.states_after (HA.op_seq_in_order h in_ts_order) in
  (match (final_states, AObj.committed_states acc) with
  | [ replayed ], [ committed ] ->
    check_int "trace replay reproduces the committed balance" committed replayed
  | _ -> Alcotest.fail "account states should be singletons");
  check_bool "some concurrency actually happened" true
    (s.AObj.conflicts > 0 || m.Runtime.Manager.aborted > 0 || s.AObj.forgotten > 0)

let () =
  Alcotest.run "stress"
    [
      ( "account-4-domains",
        [ Alcotest.test_case "observability reconciliation" `Slow test_stress_account ]
      );
    ]
