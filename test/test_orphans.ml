(* Orphan behaviour.  The paper deliberately places few restrictions on
   aborted transactions (Section 2): "a transaction can continue to
   invoke operations after it has aborted", explicitly to model systems
   with orphans.  These tests check both layers:

   - formal: the LOCK machine keeps accepting an orphan's invocations
     but refuses every response, and the orphan cannot damage (online)
     hybrid atomicity;
   - runtime: an orphaned worker (its transaction aborted from outside)
     is detected at the object interface and told to stop, and nothing
     it did survives. *)

module Q = Adt.Fifo_queue
module L = Hybrid.Lock_machine.Make (Q)
module H = L.H
module At = Model.Atomicity.Make (Q)
module QObj = Runtime.Atomic_obj.Make (Q)

let p = Model.Txn.make ~label:"P" 1
let q = Model.Txn.make ~label:"Q" 2

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- formal layer ---------------- *)

let test_orphan_invocations_accepted_responses_refused () =
  let feed m e = Result.get_ok (L.step m e) in
  let m = L.create ~conflict:Q.conflict_hybrid in
  let m = feed m (H.Invoke (p, Q.Enq 1)) in
  let m = feed m (H.Respond (p, Q.Ok)) in
  let m = feed m (H.Abort p) in
  (* the orphan keeps invoking: inputs are always accepted *)
  let m = feed m (H.Invoke (p, Q.Enq 2)) in
  (match L.step m (H.Respond (p, Q.Ok)) with
  | Error L.Already_completed -> ()
  | _ -> Alcotest.fail "orphan response must be refused");
  (* and it has no footprint: other transactions run as if it never
     existed *)
  let m = feed m (H.Invoke (q, Q.Enq 3)) in
  match L.step m (H.Respond (q, Q.Ok)) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "orphan must not hold locks"

let test_orphan_history_stays_atomic () =
  let h =
    [
      H.Invoke (p, Q.Enq 1);
      H.Respond (p, Q.Ok);
      H.Abort p;
      H.Invoke (p, Q.Enq 2);
      (* orphan activity *)
      H.Invoke (q, Q.Enq 3);
      H.Respond (q, Q.Ok);
      H.Commit (q, 1);
    ]
  in
  check_bool "well-formed" true
    (match H.well_formed h with Ok () -> true | Error _ -> false);
  check_bool "accepted by LOCK" true (L.accepts ~conflict:Q.conflict_hybrid h);
  check_bool "online hybrid atomic" true (At.online_hybrid_atomic h)

let test_orphan_releases_horizon () =
  (* An orphan must not pin compaction: its bound is discarded at abort
     and not restored by later invocations. *)
  let module C = Hybrid.Compacted.Make (Q) in
  let feed m e = Result.get_ok (C.step m e) in
  let m = C.create ~conflict:Q.conflict_hybrid in
  let m = feed m (H.Invoke (p, Q.Enq 1)) in
  let m = feed m (H.Respond (p, Q.Ok)) in
  let m = feed m (H.Abort p) in
  let m = feed m (H.Invoke (p, Q.Deq)) in
  (* orphan invocation *)
  let m = feed m (H.Invoke (q, Q.Enq 3)) in
  let m = feed m (H.Respond (q, Q.Ok)) in
  let m = feed m (H.Commit (q, 1)) in
  check_int "committed transaction folded despite the orphan" 1 (C.forgotten m)

(* ---------------- runtime layer ---------------- *)

let test_runtime_orphan_detected () =
  let obj = QObj.create ~conflict:Q.conflict_hybrid () in
  let txn = Runtime.Txn_rt.fresh () in
  (match QObj.try_invoke obj txn (Q.Enq 1) with
  | Ok Q.Ok -> ()
  | _ -> Alcotest.fail "first op");
  (* the transaction is aborted out from under its worker *)
  Runtime.Txn_rt.abort txn;
  check_bool "orphan told to stop" true
    (try
       ignore (QObj.try_invoke obj txn (Q.Enq 2));
       false
     with Runtime.Txn_rt.Abort_requested _ -> true);
  (* nothing survives *)
  match QObj.committed_states obj with
  | [ [] ] -> ()
  | _ -> Alcotest.fail "orphan work must not survive"

let test_runtime_orphan_mid_concurrency () =
  (* A worker races against an external abort; whatever happens, the
     object's committed state reflects only committed transactions. *)
  let obj = QObj.create ~conflict:Q.conflict_hybrid () in
  for k = 1 to 20 do
    let txn = Runtime.Txn_rt.fresh () in
    let killer =
      Domain.spawn (fun () -> if k mod 2 = 0 then Runtime.Txn_rt.abort txn)
    in
    (try
       (match QObj.try_invoke obj txn (Q.Enq k) with Ok _ | Error _ -> ());
       Domain.join killer;
       match Runtime.Txn_rt.status txn with
       | `Active -> Runtime.Txn_rt.abort txn
       | `Aborted | `Committed _ -> ()
     with Runtime.Txn_rt.Abort_requested _ -> Domain.join killer)
  done;
  (* every handle was aborted: the queue must be empty *)
  match QObj.committed_states obj with
  | [ [] ] -> ()
  | _ -> Alcotest.fail "only committed work may survive"

let () =
  Alcotest.run "orphans"
    [
      ( "formal",
        [
          Alcotest.test_case "invocations accepted, responses refused" `Quick
            test_orphan_invocations_accepted_responses_refused;
          Alcotest.test_case "atomicity unaffected" `Quick test_orphan_history_stays_atomic;
          Alcotest.test_case "horizon not pinned" `Quick test_orphan_releases_horizon;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "orphan detected at the object" `Quick
            test_runtime_orphan_detected;
          Alcotest.test_case "orphans under concurrency" `Quick
            test_runtime_orphan_mid_concurrency;
        ] );
    ]
