(* The shared JSON writer/reader, the Prometheus text exposition
   renderer and its parser, and the Metrics quantile edge cases the
   exposition depends on.  Everything here is in-process: the server
   end-to-end tests live in test_obs_live.ml. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_str = Alcotest.(check string)

(* ---- Json: the one escaping discipline ---- *)

let test_json_roundtrip () =
  let doc =
    Obs.Json.(
      Obj
        [
          ("int", Int 42);
          ("neg", Int (-7));
          ("float", Float 1.5);
          ("null", Null);
          ("flags", List [ Bool true; Bool false ]);
          ("nested", Obj [ ("empty_list", List []); ("empty_obj", Obj []) ]);
          ("nasty", String "quote\" backslash\\ newline\n tab\t ctl\x01 hi\xc3\xa9");
        ])
  in
  let s = Obs.Json.to_string doc in
  (match Obs.Json.parse s with
  | Ok doc' -> check_bool "document round-trips structurally" true (doc = doc')
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e);
  (* escape is the primitive other exporters splice into hand-built
     documents: its output must itself parse as a JSON string. *)
  let raw = "a\"b\\c\nd\x00e" in
  (match Obs.Json.parse (Obs.Json.escape raw) with
  | Ok (Obs.Json.String s') -> check_str "escape parses back to the raw bytes" raw s'
  | Ok _ -> Alcotest.fail "escape produced a non-string document"
  | Error e -> Alcotest.failf "escape output does not parse: %s" e);
  (* JSON has no NaN/Infinity literals; the writer clamps to null. *)
  check_str "nan becomes null" "null" (Obs.Json.to_string (Obs.Json.Float Float.nan));
  check_str "inf becomes null" "null"
    (Obs.Json.to_string (Obs.Json.Float Float.infinity))

let test_json_parse_errors () =
  let is_err s =
    match Obs.Json.parse s with Ok _ -> false | Error _ -> true
  in
  check_bool "unterminated object" true (is_err "{");
  check_bool "unterminated string" true (is_err "\"abc");
  check_bool "trailing bytes" true (is_err "1 2");
  check_bool "bare word" true (is_err "nope");
  (* liberties the reader documents: \u escapes decode as UTF-8 *)
  match Obs.Json.parse "\"\\u0041\\u00e9\"" with
  | Ok (Obs.Json.String s) -> check_str "unicode escapes decode" "A\xc3\xa9" s
  | _ -> Alcotest.fail "\\u escape did not parse"

let json_roundtrip_qcheck =
  QCheck.Test.make ~count:500 ~name:"json string round-trip (arbitrary bytes)"
    QCheck.string (fun s ->
      match Obs.Json.parse (Obs.Json.to_string (Obs.Json.String s)) with
      | Ok (Obs.Json.String s') -> s = s'
      | _ -> false)

(* ---- Metrics.quantile edge cases ---- *)

let test_quantile_empty () =
  let h = Obs.Metrics.histogram ~bounds:[| 1.; 2. |] "test.q.empty" in
  check_float "empty histogram is 0" 0. (Obs.Metrics.quantile h 0.5);
  check_float "empty histogram at q=1" 0. (Obs.Metrics.quantile h 1.0)

let test_quantile_single_sample () =
  Obs.Control.set_enabled true;
  let h = Obs.Metrics.histogram ~bounds:[| 1.; 2. |] "test.q.single" in
  Obs.Metrics.observe h 1.5;
  check_int "one observation" 1 (Obs.Metrics.count h);
  (* The single sample lands in (1, 2]; every quantile interpolates
     linearly across that bucket. *)
  check_float "q=0 is the bucket floor" 1.0 (Obs.Metrics.quantile h 0.0);
  check_float "q=0.5 is the bucket midpoint" 1.5 (Obs.Metrics.quantile h 0.5);
  check_float "q=1 is the bucket ceiling" 2.0 (Obs.Metrics.quantile h 1.0);
  (* q is clamped, not an error *)
  check_float "q above 1 clamps" 2.0 (Obs.Metrics.quantile h 7.0);
  check_float "q below 0 clamps" 1.0 (Obs.Metrics.quantile h (-1.))

let test_quantile_overflow_bucket () =
  Obs.Control.set_enabled true;
  let h = Obs.Metrics.histogram ~bounds:[| 1.; 2. |] "test.q.overflow" in
  Obs.Metrics.observe h 99.;
  (* a +inf-bucket sample resolves to the largest finite bound — a lower
     bound on the true value, the honest direction for latency *)
  check_float "overflow clamps to last bound" 2.0 (Obs.Metrics.quantile h 0.99)

(* ---- exposition format ---- *)

let render_parsed () =
  match Obs.Expose.parse (Obs.Expose.render ()) with
  | Ok series -> series
  | Error e -> Alcotest.failf "rendered exposition does not parse: %s" e

let find_exn ?labels name series =
  match Obs.Expose.find ?labels name series with
  | Some v -> v
  | None -> Alcotest.failf "series %s not found in exposition" name

let test_exposition_escaping () =
  (* An interned op label as it really appears: constructor + quoted
     payload + the odd control byte.  It must survive render -> parse. *)
  let nasty = "Deq/Val \"x\\n\"\nsecond line" in
  let g = Obs.Gauge.make ~labels:[ ("op", nasty) ] "test_expose_esc" in
  Obs.Gauge.set g 7;
  let series = render_parsed () in
  check_float "nasty label value round-trips" 7.
    (find_exn ~labels:[ ("op", nasty) ] "hcc_test_expose_esc" series)

let test_exposition_families () =
  Obs.Control.set_enabled true;
  let c = Obs.Metrics.counter "test.expose.hits" in
  Obs.Metrics.add c 3;
  let h = Obs.Metrics.histogram ~bounds:[| 0.01; 0.1 |] "test.expose.lat" in
  Obs.Metrics.observe h 0.005;
  Obs.Metrics.observe h 0.05;
  Obs.Metrics.observe h 5.0;
  Obs.Metrics.annotate "test_expose_seed" "42";
  let series = render_parsed () in
  (* counter: sanitized name, _total suffix *)
  check_float "counter gets _total and sanitized name" 3.
    (find_exn "hcc_test_expose_hits_total" series);
  (* histogram: cumulative buckets, _seconds unit, +Inf closes the family *)
  check_float "le 0.01 bucket" 1.
    (find_exn ~labels:[ ("le", "0.01") ] "hcc_test_expose_lat_seconds_bucket" series);
  check_float "le 0.1 bucket is cumulative" 2.
    (find_exn ~labels:[ ("le", "0.1") ] "hcc_test_expose_lat_seconds_bucket" series);
  check_float "+Inf bucket counts everything" 3.
    (find_exn ~labels:[ ("le", "+Inf") ] "hcc_test_expose_lat_seconds_bucket" series);
  check_float "histogram count" 3. (find_exn "hcc_test_expose_lat_seconds_count" series);
  check_float "histogram sum" 5.055 (find_exn "hcc_test_expose_lat_seconds_sum" series);
  (* annotations ride as the run_info info-gauge *)
  check_float "run_info carries annotations as labels" 1.
    (find_exn ~labels:[ ("test_expose_seed", "42") ] "hcc_run_info" series)

let test_exposition_drops_nan_callbacks () =
  Obs.Gauge.callback ~labels:[ ("which", "good") ] "test_expose_cb" (fun () -> 5.);
  Obs.Gauge.callback ~labels:[ ("which", "bad") ] "test_expose_cb" (fun () ->
      failwith "boom");
  let series = render_parsed () in
  check_float "healthy callback exported" 5.
    (find_exn ~labels:[ ("which", "good") ] "hcc_test_expose_cb" series);
  check_bool "raising callback dropped, not NaN" true
    (Obs.Expose.find ~labels:[ ("which", "bad") ] "hcc_test_expose_cb" series = None);
  Obs.Gauge.remove_callback ~labels:[ ("which", "good") ] "test_expose_cb";
  Obs.Gauge.remove_callback ~labels:[ ("which", "bad") ] "test_expose_cb"

(* ---- registry snapshot channels ---- *)

let test_registry_snapshot_channel () =
  Obs.Registry.register_snapshot ~channel:"testchan" ~name:"good" (fun () ->
      Obs.Json.Obj [ ("v", Obs.Json.Int 1) ]);
  Obs.Registry.register_snapshot ~channel:"testchan" ~name:"bad" (fun () ->
      failwith "provider boom");
  (match Obs.Registry.snapshot "testchan" with
  | Obs.Json.List [ bad; good ] ->
    (* providers sort by name; a raising provider becomes an error
       object instead of poisoning the whole snapshot *)
    check_bool "raising provider isolated as error object" true
      (Obs.Json.member "error" bad <> None);
    check_bool "healthy provider value intact" true
      (Obs.Json.member "v" good = Some (Obs.Json.Int 1))
  | j -> Alcotest.failf "unexpected snapshot shape: %s" (Obs.Json.to_string j));
  (* replace-on-name keeps long-running servers bounded *)
  Obs.Registry.register_snapshot ~channel:"testchan" ~name:"bad" (fun () ->
      Obs.Json.Int 2);
  (match Obs.Registry.snapshot "testchan" with
  | Obs.Json.List [ replaced; _ ] ->
    check_bool "re-registering a name replaces the provider" true
      (replaced = Obs.Json.Int 2)
  | j -> Alcotest.failf "unexpected snapshot shape: %s" (Obs.Json.to_string j));
  Obs.Registry.unregister_snapshot ~channel:"testchan" ~name:"good";
  Obs.Registry.unregister_snapshot ~channel:"testchan" ~name:"bad";
  check_bool "empty channel snapshots as []" true
    (Obs.Registry.snapshot "testchan" = Obs.Json.List [])

let () =
  Alcotest.run "obs_expose"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          QCheck_alcotest.to_alcotest json_roundtrip_qcheck;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "empty histogram" `Quick test_quantile_empty;
          Alcotest.test_case "single sample" `Quick test_quantile_single_sample;
          Alcotest.test_case "overflow bucket" `Quick test_quantile_overflow_bucket;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "label escaping round-trip" `Quick
            test_exposition_escaping;
          Alcotest.test_case "counter/histogram/run_info families" `Quick
            test_exposition_families;
          Alcotest.test_case "NaN callbacks dropped" `Quick
            test_exposition_drops_nan_callbacks;
        ] );
      ( "registry",
        [
          Alcotest.test_case "snapshot channel" `Quick test_registry_snapshot_channel;
        ] );
    ]
