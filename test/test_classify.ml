(* Tests for Spec.Classify: recovering the paper's symbolic table cells
   from concrete relations over the bounded universes. *)

module Q = Adt.Fifo_queue
module QC = Spec.Classify.Make (Q)
module A = Adt.Account
module AC = Spec.Classify.Make (A)

let cell = Alcotest.testable Spec.Classify.pp_cell Spec.Classify.equal_cell

let classify_queue rel = QC.classify ~title:"t" rel
let classify_account rel = AC.classify ~title:"t" rel

let test_never_always () =
  let t = classify_queue (fun _ _ -> false) in
  Alcotest.check cell "never" Spec.Classify.Never
    (Spec.Classify.cell_at t ~row:"Enq" ~col:"Deq");
  let t = classify_queue (fun _ _ -> true) in
  Alcotest.check cell "always" Spec.Classify.Always
    (Spec.Classify.cell_at t ~row:"Deq" ~col:"Enq")

let test_eq_neq () =
  let t = classify_queue Q.dependency_fig_4_3 in
  Alcotest.check cell "enq-enq neq" Spec.Classify.Neq_values
    (Spec.Classify.cell_at t ~row:"Enq" ~col:"Enq");
  Alcotest.check cell "deq-deq eq" Spec.Classify.Eq_values
    (Spec.Classify.cell_at t ~row:"Deq" ~col:"Deq");
  Alcotest.check cell "enq-deq never" Spec.Classify.Never
    (Spec.Classify.cell_at t ~row:"Enq" ~col:"Deq")

let test_labels_in_universe_order () =
  let t = classify_account (fun _ _ -> false) in
  Alcotest.(check (list string))
    "labels"
    [ "Credit/Ok"; "Post/Ok"; "Debit/Ok"; "Debit/Overdraft" ]
    t.Spec.Classify.labels

let test_conditional_fallback () =
  (* A relation matching none of the standard conditions. *)
  let weird p q =
    match (p, q) with (Q.Enq 1, _), (Q.Enq 2, _) -> true | _, _ -> false
  in
  let t = classify_queue weird in
  match Spec.Classify.cell_at t ~row:"Enq" ~col:"Enq" with
  | Spec.Classify.Conditional [ ([ 1 ], [ 2 ]) ] -> ()
  | c -> Alcotest.failf "expected Conditional [(1),(2)], got %s" (Spec.Classify.cell_to_string c)

let test_pos_value () =
  (* Row-positive condition: used by e.g. the ticket-dispenser example. *)
  let rel p q =
    match (p, q) with
    | (Q.Deq, Q.Val v), (Q.Enq _, _) -> v > 0
    | _, _ -> false
  in
  (* In the queue universe all Deq values are in {1,2} > 0, so this is
     actually Always on that cell; make 0 a possible value through a
     custom check of the fallback ordering instead: Eq/Neq take priority
     over Pos_value when both match. *)
  let t = classify_queue rel in
  Alcotest.check cell "all deq values positive -> always"
    Spec.Classify.Always
    (Spec.Classify.cell_at t ~row:"Deq" ~col:"Enq")

let test_equal_table () =
  let t1 = classify_queue Q.dependency_fig_4_2 in
  let t2 = classify_queue Q.dependency_fig_4_2 in
  let t3 = classify_queue Q.dependency_fig_4_3 in
  Alcotest.(check bool) "same" true (Spec.Classify.equal_table t1 t2);
  Alcotest.(check bool) "different" false (Spec.Classify.equal_table t1 t3)

let test_cell_to_string () =
  Alcotest.(check string) "never" "" (Spec.Classify.cell_to_string Spec.Classify.Never);
  Alcotest.(check string) "always" "true" (Spec.Classify.cell_to_string Spec.Classify.Always);
  Alcotest.(check string) "eq" "v = v'" (Spec.Classify.cell_to_string Spec.Classify.Eq_values);
  Alcotest.(check string) "pos" "v > 0" (Spec.Classify.cell_to_string Spec.Classify.Pos_value)

let test_missing_label () =
  let t = classify_queue (fun _ _ -> false) in
  Alcotest.check_raises "unknown row" Not_found (fun () ->
      ignore (Spec.Classify.cell_at t ~row:"Nope" ~col:"Enq"))

let () =
  Alcotest.run "classify"
    [
      ( "unit",
        [
          Alcotest.test_case "never/always" `Quick test_never_always;
          Alcotest.test_case "eq/neq values" `Quick test_eq_neq;
          Alcotest.test_case "label order" `Quick test_labels_in_universe_order;
          Alcotest.test_case "conditional fallback" `Quick test_conditional_fallback;
          Alcotest.test_case "pos-value vs always priority" `Quick test_pos_value;
          Alcotest.test_case "table equality" `Quick test_equal_table;
          Alcotest.test_case "cell rendering" `Quick test_cell_to_string;
          Alcotest.test_case "missing label raises" `Quick test_missing_label;
        ] );
    ]
