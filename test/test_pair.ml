(* Multi-object formal tests: the paper's Section 3.3 motivation for
   local atomicity properties, and Theorem 1 checked by the global
   serializability decision procedure. *)

module F = Adt.File_adt
module Q = Adt.Fifo_queue
module P2 = Model.Pair.Make (F) (F)
module PQ = Model.Pair.Make (Q) (Q)
module LQ = Hybrid.Lock_machine.Make (Q)

let p = Model.Txn.make ~label:"P" 1
let q = Model.Txn.make ~label:"Q" 2

let check_bool = Alcotest.(check bool)

let wf h = match P2.well_formed h with Ok () -> true | Error _ -> false

(* ------------------------------------------------------------------ *)
(* The incompatible-schemes failure (paper §3.3): each object is       *)
(* locally atomic — its projection is serializable — but object X      *)
(* serializes P before Q while object Y serializes Q before P, so no   *)
(* global order exists.                                                *)
(* ------------------------------------------------------------------ *)

let incompatible_history : P2.t =
  [
    (* At X: P writes 1, Q reads 1  =>  X forces P < Q *)
    P2.At_x (P2.HX.Invoke (p, F.Write 1));
    P2.At_x (P2.HX.Respond (p, F.Ok));
    P2.At_x (P2.HX.Invoke (q, F.Read));
    P2.At_x (P2.HX.Respond (q, F.Val 1));
    (* At Y: Q writes 2, P reads 2  =>  Y forces Q < P *)
    P2.At_y (P2.HY.Invoke (q, F.Write 2));
    P2.At_y (P2.HY.Respond (q, F.Ok));
    P2.At_y (P2.HY.Invoke (p, F.Read));
    P2.At_y (P2.HY.Respond (p, F.Val 2));
    P2.At_x (P2.HX.Commit (p, 1));
    P2.At_y (P2.HY.Commit (p, 1));
    P2.At_x (P2.HX.Commit (q, 2));
    P2.At_y (P2.HY.Commit (q, 2));
  ]

let test_incompatible_schemes () =
  check_bool "well-formed" true (wf incompatible_history);
  (* each object alone is fine *)
  let module AtF = Model.Atomicity.Make (F) in
  check_bool "X locally atomic" true (AtF.atomic (P2.project_x incompatible_history));
  check_bool "Y locally atomic" true (AtF.atomic (P2.project_y incompatible_history));
  (* but the system is not *)
  check_bool "globally NOT atomic" false (P2.atomic incompatible_history);
  (* and indeed Y is not hybrid atomic: with P's timestamp below Q's, Y
     serializes against the timestamp order — the local property one of
     the two objects must violate *)
  check_bool "Y violates hybrid atomicity" false
    (AtF.hybrid_atomic (P2.project_y incompatible_history))

(* A compatible version of the same pattern: both objects see P < Q. *)
let test_compatible_schemes () =
  let h : P2.t =
    [
      P2.At_x (P2.HX.Invoke (p, F.Write 1));
      P2.At_x (P2.HX.Respond (p, F.Ok));
      P2.At_y (P2.HY.Invoke (p, F.Write 2));
      P2.At_y (P2.HY.Respond (p, F.Ok));
      P2.At_x (P2.HX.Invoke (q, F.Read));
      P2.At_x (P2.HX.Respond (q, F.Val 1));
      P2.At_y (P2.HY.Invoke (q, F.Read));
      P2.At_y (P2.HY.Respond (q, F.Val 2));
      P2.At_x (P2.HX.Commit (p, 1));
      P2.At_y (P2.HY.Commit (p, 1));
      P2.At_x (P2.HX.Commit (q, 2));
      P2.At_y (P2.HY.Commit (q, 2));
    ]
  in
  check_bool "well-formed" true (wf h);
  check_bool "globally atomic" true (P2.atomic h);
  check_bool "globally hybrid atomic" true (P2.hybrid_atomic h)

(* ------------------------------------------------------------------ *)
(* Global well-formedness specifics                                    *)
(* ------------------------------------------------------------------ *)

let test_global_pending_invocation () =
  (* invoking at Y while an invocation is pending at X is ill-formed *)
  let h : P2.t =
    [ P2.At_x (P2.HX.Invoke (p, F.Write 1)); P2.At_y (P2.HY.Invoke (p, F.Write 2)) ]
  in
  check_bool "rejected" false (wf h)

let test_response_at_wrong_object () =
  let h : P2.t =
    [ P2.At_x (P2.HX.Invoke (p, F.Write 1)); P2.At_y (P2.HY.Respond (p, F.Ok)) ]
  in
  check_bool "rejected" false (wf h)

let test_cross_object_timestamp_mismatch () =
  let h : P2.t =
    [
      P2.At_x (P2.HX.Invoke (p, F.Write 1));
      P2.At_x (P2.HX.Respond (p, F.Ok));
      P2.At_x (P2.HX.Commit (p, 1));
      P2.At_y (P2.HY.Commit (p, 2));
    ]
  in
  check_bool "rejected" false (wf h)

let test_cross_object_timestamp_clash () =
  let h : P2.t =
    [
      P2.At_x (P2.HX.Invoke (p, F.Write 1));
      P2.At_x (P2.HX.Respond (p, F.Ok));
      P2.At_x (P2.HX.Commit (p, 1));
      P2.At_y (P2.HY.Invoke (q, F.Write 2));
      P2.At_y (P2.HY.Respond (q, F.Ok));
      P2.At_y (P2.HY.Commit (q, 1));
    ]
  in
  check_bool "rejected" false (wf h)

(* ------------------------------------------------------------------ *)
(* Theorem 1, formally: drive TWO LOCK machines with a shared pool of  *)
(* transactions and a shared timestamp counter; both projections are   *)
(* in L(LOCK) with a dependency conflict relation, hence hybrid        *)
(* atomic (Thm 16); the global history must then be atomic — and       *)
(* serializable specifically in the shared timestamp order.            *)
(* ------------------------------------------------------------------ *)

let prop_theorem_1 =
  QCheck2.Test.make ~name:"Theorem 1: two hybrid-atomic objects compose" ~count:150
    QCheck2.Gen.(0 -- 1_000_000)
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      let conflict = Q.conflict_hybrid in
      let mx = ref (LQ.create ~conflict) in
      let my = ref (LQ.create ~conflict) in
      let history = ref [] in
      let clock = ref 0 in
      let txns = 3 in
      let completed = Array.make txns false in
      let pending_at = Array.make txns None in
      (* which object holds the pending invocation *)
      for _ = 1 to 22 do
        let i = Random.State.int rand txns in
        let t = Model.Txn.make i in
        if not completed.(i) then begin
          match pending_at.(i) with
          | Some `X -> (
            match LQ.available_responses !mx t with
            | r :: _ -> (
              match LQ.step !mx (PQ.HX.Respond (t, r)) with
              | Ok m ->
                mx := m;
                history := PQ.At_x (PQ.HX.Respond (t, r)) :: !history;
                pending_at.(i) <- None
              | Error _ -> ())
            | [] -> ())
          | Some `Y -> (
            match LQ.available_responses !my t with
            | r :: _ -> (
              match LQ.step !my (PQ.HY.Respond (t, r)) with
              | Ok m ->
                my := m;
                history := PQ.At_y (PQ.HY.Respond (t, r)) :: !history;
                pending_at.(i) <- None
              | Error _ -> ())
            | [] -> ())
          | None -> (
            match Random.State.int rand 4 with
            | 0 ->
              let inv = if Random.State.bool rand then Q.Enq 1 else Q.Enq 2 in
              mx := Result.get_ok (LQ.step !mx (PQ.HX.Invoke (t, inv)));
              history := PQ.At_x (PQ.HX.Invoke (t, inv)) :: !history;
              pending_at.(i) <- Some `X
            | 1 ->
              let inv = if Random.State.bool rand then Q.Enq 1 else Q.Deq in
              my := Result.get_ok (LQ.step !my (PQ.HY.Invoke (t, inv)));
              history := PQ.At_y (PQ.HY.Invoke (t, inv)) :: !history;
              pending_at.(i) <- Some `Y
            | 2 ->
              incr clock;
              let ts = !clock in
              mx := Result.get_ok (LQ.step !mx (PQ.HX.Commit (t, ts)));
              my := Result.get_ok (LQ.step !my (PQ.HY.Commit (t, ts)));
              history :=
                PQ.At_y (PQ.HY.Commit (t, ts)) :: PQ.At_x (PQ.HX.Commit (t, ts)) :: !history;
              completed.(i) <- true
            | _ ->
              mx := Result.get_ok (LQ.step !mx (PQ.HX.Abort t));
              my := Result.get_ok (LQ.step !my (PQ.HY.Abort t));
              history := PQ.At_y (PQ.HY.Abort t) :: PQ.At_x (PQ.HX.Abort t) :: !history;
              completed.(i) <- true)
        end
      done;
      let h = List.rev !history in
      (match PQ.well_formed h with Ok () -> true | Error _ -> false)
      && PQ.hybrid_atomic h && PQ.atomic h)

let () =
  Alcotest.run "pair"
    [
      ( "section-3-3",
        [
          Alcotest.test_case "incompatible local schemes break globally" `Quick
            test_incompatible_schemes;
          Alcotest.test_case "compatible schemes compose" `Quick test_compatible_schemes;
        ] );
      ( "global-well-formedness",
        [
          Alcotest.test_case "one pending invocation system-wide" `Quick
            test_global_pending_invocation;
          Alcotest.test_case "response at the invoked object" `Quick
            test_response_at_wrong_object;
          Alcotest.test_case "consistent timestamps" `Quick
            test_cross_object_timestamp_mismatch;
          Alcotest.test_case "unique timestamps" `Quick test_cross_object_timestamp_clash;
        ] );
      ("theorem-1", List.map QCheck_alcotest.to_alcotest [ prop_theorem_1 ]);
    ]
