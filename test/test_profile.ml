(* The span profiler: exact phase math over hand-built record streams
   (local and cross-shard spans), abort and orphan handling, per-op
   histogram keying and overflow, SLO target parsing and verdicts, and
   a live 3-shard run whose 2PC legs stitch into cross spans — with a
   coordinator kill point leaving the in-doubt span open. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_s = Alcotest.(check (float 1e-12))

(* A hand-built flight record; [dom] is chunk metadata the feed ignores. *)
let r ?(aux16 = 0) ?(aux32 = 0) ?(arg = 0) ~code ~txn ~time () =
  { Obs.Flight.dom = 0; code; aux16; aux32; txn; time; arg }

let phase_stat rep name = List.assoc name rep.Obs.Profile.r_phases

(* ---- local span phase math ---- *)

(* begin 1us, lock wait 2us->42us, WAL append 100us, group-commit sync
   101us->131us, commit 201us.  Every phase is determined exactly:
   total=200us, lock_wait=40us, execute=append-begin-wait=59us,
   commit=end-append=101us, sync_wait=30us.  st_max and st_mean are
   exact (quantiles interpolate buckets), so single-span assertions
   check those. *)
let local_span_records =
  [
    r ~code:Obs.Span.c_begin ~txn:7 ~time:1_000 ();
    r ~code:Obs.Span.c_lock_wait ~txn:7 ~time:2_000 ();
    r ~code:Obs.Span.c_lock_resume ~txn:7 ~time:42_000 ();
    r ~code:Obs.Span.c_append ~txn:7 ~time:100_000 ~arg:3 ();
    r ~code:Obs.Span.c_sync_wait ~txn:7 ~time:101_000 ~arg:3 ();
    r ~code:Obs.Span.c_sync_done ~txn:7 ~time:131_000 ();
    r ~code:Obs.Span.c_commit ~txn:7 ~time:201_000 ~arg:11 ();
  ]

let local_agg () =
  let agg = Obs.Profile.create () in
  Obs.Profile.feed_all agg local_span_records;
  agg

let test_local_phase_math () =
  let rep = Obs.Profile.report (local_agg ()) in
  check_int "one committed span" 1 rep.Obs.Profile.r_spans;
  check_int "no aborts" 0 rep.Obs.Profile.r_aborts;
  check_int "nothing left open" 0 rep.Obs.Profile.r_open;
  check_int "classified local" 1 rep.Obs.Profile.r_local.Obs.Profile.st_count;
  check_int "not cross" 0 rep.Obs.Profile.r_cross.Obs.Profile.st_count;
  check_s "total latency" 2e-4 rep.Obs.Profile.r_local.Obs.Profile.st_max;
  check_s "total mean = max for one span" 2e-4
    rep.Obs.Profile.r_local.Obs.Profile.st_mean;
  check_s "lock_wait window" 4e-5 (phase_stat rep "lock_wait").Obs.Profile.st_max;
  check_s "sync_wait window" 3e-5 (phase_stat rep "sync_wait").Obs.Profile.st_max;
  check_s "execute = append - begin - lock waits" 5.9e-5
    (phase_stat rep "execute").Obs.Profile.st_max;
  check_s "commit = end - append" 1.01e-4 (phase_stat rep "commit").Obs.Profile.st_max;
  check_int "no prepare phase on a local span" 0
    (phase_stat rep "prepare").Obs.Profile.st_count;
  check_int "no decide phase on a local span" 0
    (phase_stat rep "decide").Obs.Profile.st_count

(* ---- cross span phase math ---- *)

(* begin 10us, cross_begin 15us (must not reset the start), lock wait
   30us->40us, prepares from 60us, last prepared 80us, decide mark 90us,
   per-shard decide_commit marks (ignored by the feed), cross_commit
   110us.  total=100us, execute=prep_first-begin-wait=40us,
   prepare=prep_last-prep_first=20us, decide=end-prep_last=30us. *)
let test_cross_phase_math () =
  let agg = Obs.Profile.create () in
  Obs.Profile.feed_all agg
    [
      r ~code:Obs.Span.c_begin ~txn:9 ~time:10_000 ();
      r ~code:Obs.Span.c_cross_begin ~txn:9 ~time:15_000 ();
      r ~code:Obs.Span.c_lock_wait ~txn:9 ~time:30_000 ();
      r ~code:Obs.Span.c_lock_resume ~txn:9 ~time:40_000 ();
      r ~code:Obs.Span.c_prepare ~txn:9 ~time:60_000 ~aux16:0 ();
      r ~code:Obs.Span.c_prepared ~txn:9 ~time:70_000 ~aux16:0 ~arg:41 ();
      r ~code:Obs.Span.c_prepare ~txn:9 ~time:65_000 ~aux16:1 ();
      r ~code:Obs.Span.c_prepared ~txn:9 ~time:80_000 ~aux16:1 ~arg:43 ();
      r ~code:Obs.Span.c_decide ~txn:9 ~time:90_000 ~arg:43 ();
      r ~code:Obs.Span.c_decide_commit ~txn:9 ~time:92_000 ~aux16:0 ~arg:43 ();
      r ~code:Obs.Span.c_decide_commit ~txn:9 ~time:93_000 ~aux16:1 ~arg:43 ();
      r ~code:Obs.Span.c_cross_commit ~txn:9 ~time:110_000 ~arg:43 ();
    ];
  let rep = Obs.Profile.report agg in
  check_int "one committed span" 1 rep.Obs.Profile.r_spans;
  check_int "classified cross" 1 rep.Obs.Profile.r_cross.Obs.Profile.st_count;
  check_int "not local" 0 rep.Obs.Profile.r_local.Obs.Profile.st_count;
  check_s "total latency (cross_begin kept the original start)" 1e-4
    rep.Obs.Profile.r_cross.Obs.Profile.st_max;
  check_s "execute = first prepare - begin - lock waits" 4e-5
    (phase_stat rep "execute").Obs.Profile.st_max;
  check_s "prepare = first prepare -> last prepared" 2e-5
    (phase_stat rep "prepare").Obs.Profile.st_max;
  check_s "decide = last prepared -> end" 3e-5
    (phase_stat rep "decide").Obs.Profile.st_max;
  check_s "lock_wait window" 1e-5 (phase_stat rep "lock_wait").Obs.Profile.st_max

(* ---- aborts, orphans, standalone marks ---- *)

let test_abort_and_orphans () =
  let agg = Obs.Profile.create () in
  Obs.Profile.feed_all agg
    [
      r ~code:Obs.Span.c_begin ~txn:3 ~time:1_000 ();
      r ~code:Obs.Span.c_abort ~txn:3 ~time:5_000 ();
      (* The span is closed: a duplicate abort is an orphan, ignored. *)
      r ~code:Obs.Span.c_abort ~txn:3 ~time:6_000 ();
      (* Marks for an id we never saw begin: joined mid-span, ignored. *)
      r ~code:Obs.Span.c_lock_wait ~txn:99 ~time:7_000 ();
      r ~code:Obs.Span.c_commit ~txn:99 ~time:8_000 ();
    ];
  let rep = Obs.Profile.report agg in
  check_int "one abort" 1 rep.Obs.Profile.r_aborts;
  check_int "no commits" 0 rep.Obs.Profile.r_spans;
  check_int "nothing open" 0 rep.Obs.Profile.r_open;
  check_int "aborted spans contribute no phase samples" 0
    (phase_stat rep "lock_wait").Obs.Profile.st_count

let test_standalone_marks () =
  let agg = Obs.Profile.create () in
  Obs.Profile.feed_all agg
    [
      (* backoff/fsync carry their duration in [arg], no open span needed *)
      r ~code:Obs.Span.c_backoff ~txn:5 ~time:1_000 ~arg:7_000 ();
      r ~code:Obs.Span.c_fsync ~txn:0 ~time:2_000 ~arg:12_000 ();
    ];
  let rep = Obs.Profile.report agg in
  check_s "backoff duration from the record" 7e-6
    (phase_stat rep "backoff").Obs.Profile.st_max;
  check_s "fsync duration from the record" 1.2e-5
    (phase_stat rep "fsync").Obs.Profile.st_max

(* ---- per-op histograms: keying, family cut, overflow ---- *)

let test_op_keying () =
  let lookup ~obj ~inv = (Printf.sprintf "obj%d" obj, Printf.sprintf "inv%d" inv) in
  let agg = Obs.Profile.create ~lookup () in
  Obs.Profile.feed agg (r ~code:Obs.Span.c_op ~txn:1 ~time:1_000 ~aux32:5 ~aux16:2 ~arg:5_000 ());
  Obs.Profile.feed agg (r ~code:Obs.Span.c_op ~txn:1 ~time:2_000 ~aux32:5 ~aux16:2 ~arg:9_000 ());
  let rep = Obs.Profile.report agg in
  (match rep.Obs.Profile.r_ops with
  | [ ((o, f), st) ] ->
    check_bool "lookup names the key" true (o = "obj5" && f = "inv2");
    check_int "both samples on one key" 2 st.Obs.Profile.st_count;
    check_s "max duration from the record" 9e-6 st.Obs.Profile.st_max
  | l -> Alcotest.fail (Printf.sprintf "expected one op key, saw %d" (List.length l)))

let test_op_overflow () =
  (* Distinct keys beyond the cap collapse onto ("other","other"). *)
  let lookup ~obj ~inv:_ = (Printf.sprintf "o%d" obj, "f") in
  let agg = Obs.Profile.create ~lookup () in
  for i = 0 to 69 do
    Obs.Profile.feed agg
      (r ~code:Obs.Span.c_op ~txn:1 ~time:(1_000 * (i + 1)) ~aux32:i ~arg:1_000 ())
  done;
  let rep = Obs.Profile.report agg in
  check_int "cap plus the overflow key" 65 (List.length rep.Obs.Profile.r_ops);
  let other = List.assoc ("other", "other") rep.Obs.Profile.r_ops in
  check_int "overflow samples pool on other" 6 other.Obs.Profile.st_count

(* ---- SLO target parsing and verdicts ---- *)

let test_target_parsing () =
  let ok spec metric q limit =
    match Obs.Profile.target_of_spec spec with
    | Ok t ->
      check_bool (spec ^ ": metric") true (t.Obs.Profile.t_metric = metric);
      check_s (spec ^ ": quantile") q t.Obs.Profile.t_quantile;
      check_s (spec ^ ": limit") limit t.Obs.Profile.t_limit_s
    | Error e -> Alcotest.fail (spec ^ " should parse: " ^ e)
  in
  ok "local:p99:5ms" "local" 0.99 0.005;
  ok "cross:p999:50ms" "cross" 0.999 0.05;
  ok "lock_wait:p90:800us" "lock_wait" 0.9 0.0008;
  ok "local:max:2s" "local" 1.0 2.0;
  ok "local:p50:2" "local" 0.5 2.0;
  let err spec =
    check_bool (spec ^ " rejected") true
      (Result.is_error (Obs.Profile.target_of_spec spec))
  in
  err "nope";
  err "bogus:p99:1ms";
  err "local:p42:1ms";
  err "local:p99:abc";
  check_bool "targets_of_specs propagates the first error" true
    (Result.is_error (Obs.Profile.targets_of_specs [ "local:p99:1ms"; "nope" ]));
  check_bool "targets_of_specs collects all" true
    (match Obs.Profile.targets_of_specs [ "local:p99:1ms"; "cross:max:1s" ] with
    | Ok [ _; _ ] -> true
    | _ -> false)

let test_verdicts () =
  let rep = Obs.Profile.report (local_agg ()) in
  let t spec =
    match Obs.Profile.target_of_spec spec with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  let vs = Obs.Profile.check rep [ t "local:max:1s"; t "local:max:1us" ] in
  (match vs with
  | [ generous; tight ] ->
    check_bool "1s budget holds" true generous.Obs.Profile.v_ok;
    check_bool "1us budget breached" false tight.Obs.Profile.v_ok;
    check_s "actual is the span max" 2e-4 generous.Obs.Profile.v_actual;
    check_bool "breached iff any verdict failed" true (Obs.Profile.breached vs);
    check_bool "all-ok is not breached" false (Obs.Profile.breached [ generous ])
  | _ -> Alcotest.fail "expected two verdicts");
  (* p90 has no dedicated histogram rail; the check reads p99 so the
     verdict errs conservative, never optimistic. *)
  (match Obs.Profile.check rep [ t "lock_wait:p90:1s" ] with
  | [ v ] ->
    check_s "p90 conservatively reads p99" (phase_stat rep "lock_wait").Obs.Profile.st_p99
      v.Obs.Profile.v_actual
  | _ -> Alcotest.fail "expected one verdict")

(* ---- live 3-shard stitch with a coordinator kill point ---- *)

let test_three_shard_stitch_and_kill () =
  Obs.Control.set_enabled true;
  Obs.Flight.reset_for_tests ();
  (* Build the shards before arming the recorder: account seeding runs
     its own transactions, and this test counts spans. *)
  let s = Sim.Shard_exp.make_setup ~shards:3 () in
  Obs.Flight.set_level 1;
  Fun.protect ~finally:(fun () -> Obs.Flight.set_level 0) @@ fun () ->
  let path = Filename.temp_file "hcc-profile-stitch" ".bin" in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  let agg = Obs.Profile.create () in
  let flight = Obs.Flight.start ~period_ms:5 ~path ~observer:(Obs.Profile.feed agg) () in
  let shard i = Dist.Router.shard s.Sim.Shard_exp.router i in
  let acct i = s.Sim.Shard_exp.accounts.(i) in
  (* Five committed three-way transfers: every 2PC leg carries the
     global id, so each stitches into one cross span. *)
  for _ = 1 to 5 do
    Dist.Coordinator.run s.Sim.Shard_exp.coord (fun ctx ->
        let b0 = Dist.Coordinator.branch ctx (shard 0) in
        let b1 = Dist.Coordinator.branch ctx (shard 1) in
        let b2 = Dist.Coordinator.branch ctx (shard 2) in
        ignore (Sim.Shard_exp.Aobj.invoke (acct 0) b0 (Adt.Account.Debit 2));
        ignore (Sim.Shard_exp.Aobj.invoke (acct 1) b1 (Adt.Account.Credit 1));
        ignore (Sim.Shard_exp.Aobj.invoke (acct 2) b2 (Adt.Account.Credit 1)))
  done;
  (* One single-shard transaction rides the fast path: a local span. *)
  Dist.Coordinator.run s.Sim.Shard_exp.coord (fun ctx ->
      let b = Dist.Coordinator.branch ctx (shard 0) in
      ignore (Sim.Shard_exp.Aobj.invoke (acct 0) b (Adt.Account.Credit 3)));
  (* Kill the coordinator after the decision is durable: no cleanup
     runs, so the span never closes — it must show up as open, not
     committed and not aborted. *)
  Dist.Coordinator.set_step_hook s.Sim.Shard_exp.coord (function
    | Dist.Coordinator.Decided _ -> failwith "coordinator crash at decide"
    | _ -> ());
  (try
     ignore
       (Dist.Coordinator.run_once s.Sim.Shard_exp.coord (fun ctx ->
            let b0 = Dist.Coordinator.branch ctx (shard 0) in
            let b1 = Dist.Coordinator.branch ctx (shard 1) in
            ignore (Sim.Shard_exp.Aobj.invoke (acct 0) b0 (Adt.Account.Debit 1));
            ignore (Sim.Shard_exp.Aobj.invoke (acct 1) b1 (Adt.Account.Credit 1)))
         : (unit, string) result);
     Alcotest.fail "kill point did not fire"
   with Failure _ -> ());
  Dist.Coordinator.clear_step_hook s.Sim.Shard_exp.coord;
  Obs.Flight.stop flight;
  let rep = Obs.Profile.report agg in
  check_int "five cross spans stitched" 5
    rep.Obs.Profile.r_cross.Obs.Profile.st_count;
  check_int "one local span (single-shard fast path)" 1
    rep.Obs.Profile.r_local.Obs.Profile.st_count;
  check_int "six committed spans" 6 rep.Obs.Profile.r_spans;
  check_int "no aborts" 0 rep.Obs.Profile.r_aborts;
  check_int "the killed transaction's span is still open" 1 rep.Obs.Profile.r_open;
  check_int "five prepare legs" 5 (phase_stat rep "prepare").Obs.Profile.st_count;
  check_int "five decide legs" 5 (phase_stat rep "decide").Obs.Profile.st_count;
  check_int "no ring overruns" 0 rep.Obs.Profile.r_lost;
  (* The offline pipeline over the file agrees with the online feed. *)
  let off_agg, records, _meta, tail = Sim.Profile_run.decode_file path in
  check_bool "file tail clean" true (tail = Obs.Flight.Clean);
  check_bool "file holds records" true (records <> []);
  let off = Obs.Profile.report off_agg in
  check_int "offline spans agree" rep.Obs.Profile.r_spans off.Obs.Profile.r_spans;
  check_int "offline cross agree" rep.Obs.Profile.r_cross.Obs.Profile.st_count
    off.Obs.Profile.r_cross.Obs.Profile.st_count;
  check_int "offline open agree" rep.Obs.Profile.r_open off.Obs.Profile.r_open;
  Sim.Shard_exp.close_setup s

let () =
  Alcotest.run "profile"
    [
      ( "phases",
        [
          Alcotest.test_case "local span phase math" `Quick test_local_phase_math;
          Alcotest.test_case "cross span phase math" `Quick test_cross_phase_math;
          Alcotest.test_case "aborts and orphan marks" `Quick test_abort_and_orphans;
          Alcotest.test_case "standalone backoff/fsync marks" `Quick
            test_standalone_marks;
        ] );
      ( "ops",
        [
          Alcotest.test_case "per-op keying" `Quick test_op_keying;
          Alcotest.test_case "overflow pools on other" `Quick test_op_overflow;
        ] );
      ( "slo",
        [
          Alcotest.test_case "target parsing" `Quick test_target_parsing;
          Alcotest.test_case "verdicts and breach" `Quick test_verdicts;
        ] );
      ( "stitch",
        [
          Alcotest.test_case "3-shard 2PC stitch with coordinator kill" `Quick
            test_three_shard_stitch_and_kill;
        ] );
    ]
