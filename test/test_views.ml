(* Executable checks of the paper's view machinery: Definitions 5/6 and
   the proof-carrying Lemmas 4 and 7, as unit cases and random
   properties over the FIFO queue and Account specifications. *)

module Q = Adt.Fifo_queue
module A = Adt.Account
module VQ = Spec.Views.Make (Q)
module VA = Spec.Views.Make (A)
module SQm = Spec.Sequences.Make (Q)
module SAm = Spec.Sequences.Make (A)
module DQ = Spec.Dependency.Make (Q)
module DA = Spec.Dependency.Make (A)

let check_bool = Alcotest.(check bool)

let r_q = Q.dependency_fig_4_2
let h0 = [ Q.enq 1; Q.enq 2; Q.deq 1 ]

(* ---------------- Definitions 5 and 6 ---------------- *)

let test_subsequence () =
  Alcotest.(check int) "extract" 2 (List.length (VQ.subsequence h0 [ 0; 2 ]));
  Alcotest.check_raises "out of range" (Invalid_argument "Views.subsequence") (fun () ->
      ignore (VQ.subsequence h0 [ 7 ]))

let test_is_closed () =
  (* Deq 1 depends on Enq 2 (different value) under fig 4-2; keeping the
     Deq without the Enq 2 is not closed. *)
  check_bool "not closed" false (VQ.is_closed r_q h0 [ 2 ]);
  check_bool "closed with enq2" true (VQ.is_closed r_q h0 [ 1; 2 ]);
  check_bool "empty closed" true (VQ.is_closed r_q h0 []);
  check_bool "full closed" true (VQ.is_closed r_q h0 [ 0; 1; 2 ])

let test_is_view_for () =
  (* A view for a second Deq (returning 2) must contain Enq 1 (different
     item) and Deq 1 (no: deq 1 is same item for deq 2? fig 4-2: Deq v
     depends on Deq v' iff v = v'; so Deq 2 depends on Enq 1 only). *)
  let q = Q.deq 2 in
  check_bool "enq1 required" false (VQ.is_view_for r_q h0 [ 1; 2 ] q);
  check_bool "view" true (VQ.is_view_for r_q h0 [ 0; 1; 2 ] q);
  (* minimal view: Enq 1 (dep of q), and for closedness Deq 1 needs its
     deps... Deq 1 isn't included, Enq 1 has no deps. *)
  Alcotest.(check (list int)) "minimal view" [ 0 ] (VQ.view_indices_for r_q h0 q)

let test_view_closure_chases_dependencies () =
  (* In [Enq 2; Enq 1; Deq 2], q = Deq 1 depends only on the Enq of the
     different item (idx 0); Enq 2 itself depends on nothing, so the
     minimal view is exactly [0]. *)
  let h = [ Q.enq 2; Q.enq 1; Q.deq 2 ] in
  Alcotest.(check (list int)) "direct only" [ 0 ] (VQ.view_indices_for r_q h (Q.deq 1));
  (* Transitive closure: q = Deq 1 over [Enq 1; Enq 2; Enq 1; Deq 1]
     depends on the earlier Deq 1 (same item, idx 3) and Enq 2 (idx 1);
     the kept Deq 1 in turn requires Enq 2, already present. *)
  let h = [ Q.enq 1; Q.enq 2; Q.enq 1; Q.deq 1 ] in
  Alcotest.(check (list int)) "closed" [ 1; 3 ] (VQ.view_indices_for r_q h (Q.deq 1))

(* ---------------- Lemma 4 ---------------- *)

(* If h*k1 and h*k2 are legal and no op of k1 depends on an op of k2,
   then h*k2*k1 is legal. *)
let prop_lemma_4 =
  QCheck2.Test.make ~name:"Lemma 4 (queue, fig 4-2)" ~count:500
    QCheck2.Gen.(
      triple
        (list_size (0 -- 3) (oneofl Q.universe))
        (list_size (0 -- 3) (oneofl Q.universe))
        (list_size (0 -- 3) (oneofl Q.universe)))
    (fun (h, k1, k2) ->
      let no_deps =
        List.for_all (fun q1 -> List.for_all (fun q2 -> not (r_q q1 q2)) k2) k1
      in
      (not (SQm.legal (h @ k1) && SQm.legal (h @ k2) && no_deps))
      || SQm.legal (h @ k2 @ k1))

let prop_lemma_4_account =
  QCheck2.Test.make ~name:"Lemma 4 (account, fig 4-5)" ~count:500
    QCheck2.Gen.(
      triple
        (list_size (0 -- 3) (oneofl A.universe))
        (list_size (0 -- 3) (oneofl A.universe))
        (list_size (0 -- 3) (oneofl A.universe)))
    (fun (h, k1, k2) ->
      let r = A.dependency_fig_4_5 in
      let no_deps =
        List.for_all (fun q1 -> List.for_all (fun q2 -> not (r q1 q2)) k2) k1
      in
      (not (SAm.legal (h @ k1) && SAm.legal (h @ k2) && no_deps))
      || SAm.legal (h @ k2 @ k1))

(* ---------------- Lemma 7 ---------------- *)

(* If g is an R-view of h for q and g*q is legal, then h*q is legal. *)
let prop_lemma_7 =
  QCheck2.Test.make ~name:"Lemma 7 (queue, fig 4-2)" ~count:500
    QCheck2.Gen.(
      pair (list_size (0 -- 5) (oneofl Q.universe)) (oneofl Q.universe))
    (fun (h, q) ->
      QCheck2.assume (SQm.legal h);
      let idxs = VQ.view_indices_for r_q h q in
      let g = VQ.subsequence h idxs in
      (* the computed minimal view satisfies Definition 6 *)
      VQ.is_view_for r_q h idxs q
      && ((not (SQm.legal (g @ [ q ]))) || SQm.legal (h @ [ q ])))

let prop_lemma_7_account =
  QCheck2.Test.make ~name:"Lemma 7 (account, fig 4-5)" ~count:500
    QCheck2.Gen.(
      pair (list_size (0 -- 5) (oneofl A.universe)) (oneofl A.universe))
    (fun (h, q) ->
      let r = A.dependency_fig_4_5 in
      QCheck2.assume (SAm.legal h);
      let idxs = VA.view_indices_for r h q in
      let g = VA.subsequence h idxs in
      VA.is_view_for r h idxs q
      && ((not (SAm.legal (g @ [ q ]))) || SAm.legal (h @ [ q ])))

(* Every R-view (not just the minimal one) works: sample arbitrary
   supersets of the minimal view that are closed. *)
let prop_lemma_7_any_view =
  QCheck2.Test.make ~name:"Lemma 7 holds for arbitrary closed views" ~count:500
    QCheck2.Gen.(
      triple
        (list_size (0 -- 5) (oneofl Q.universe))
        (oneofl Q.universe)
        (list_size (0 -- 5) (0 -- 4)))
    (fun (h, q, extra) ->
      QCheck2.assume (SQm.legal h);
      let n = List.length h in
      let base = VQ.view_indices_for r_q h q in
      let candidate =
        List.sort_uniq compare (base @ List.filter (fun i -> i < n) extra)
      in
      QCheck2.assume (VQ.is_view_for r_q h candidate q);
      let g = VQ.subsequence h candidate in
      (not (SQm.legal (g @ [ q ]))) || SQm.legal (h @ [ q ]))

(* computed minimal views satisfy both definitional clauses *)
let prop_view_definitional =
  QCheck2.Test.make ~name:"view_indices_for satisfies Definitions 5 and 6" ~count:500
    QCheck2.Gen.(
      pair (list_size (0 -- 6) (oneofl Q.universe)) (oneofl Q.universe))
    (fun (h, q) ->
      let idxs = VQ.view_indices_for r_q h q in
      VQ.is_closed r_q h idxs && VQ.is_view_for r_q h idxs q)

let () =
  Alcotest.run "views"
    [
      ( "definitions",
        [
          Alcotest.test_case "subsequence" `Quick test_subsequence;
          Alcotest.test_case "closedness" `Quick test_is_closed;
          Alcotest.test_case "views" `Quick test_is_view_for;
          Alcotest.test_case "closure" `Quick test_view_closure_chases_dependencies;
        ] );
      ( "lemmas",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_lemma_4;
            prop_lemma_4_account;
            prop_lemma_7;
            prop_lemma_7_account;
            prop_lemma_7_any_view;
            prop_view_definitional;
          ] );
    ]
