(* The 2PC kill-point matrix as a test: crash the coordinator at every
   protocol milestone (both group-commit modes), recover every shard
   from the on-disk logs alone, and require the victim's fate to match
   the decision log's verdict on every shard — commit at the decided
   timestamp when a Decide survived, presumed abort otherwise. *)

let temp_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hybrid-cc-dist-crash-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir d 0o755;
  d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let check_matrix m =
  List.iter
    (fun c ->
      Alcotest.(check (list string))
        (Printf.sprintf "kill=%s gc=%b"
           (Sim.Shard_crash.site_label c.Sim.Shard_crash.k_site)
           c.Sim.Shard_crash.k_gc)
        [] c.Sim.Shard_crash.k_failures)
    m.Sim.Shard_crash.cells;
  Alcotest.(check bool) "matrix ok" true (Sim.Shard_crash.ok m)

let test_matrix_two_shards () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let m = Sim.Shard_crash.run ~dir () in
      (* Every milestone of a two-participant commit, twice (both
         group-commit modes). *)
      Alcotest.(check int) "cell count" 14 (List.length m.Sim.Shard_crash.cells);
      check_matrix m)

(* Bystander shards and committed cross-shard background traffic must
   not disturb the verdicts. *)
let test_matrix_with_bystanders () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () -> check_matrix (Sim.Shard_crash.run ~shards:3 ~cross_pct:25. ~dir ()))

let () =
  Alcotest.run "dist-crash"
    [
      ( "kill-matrix",
        [
          Alcotest.test_case "every kill point, both sync modes" `Quick
            test_matrix_two_shards;
          Alcotest.test_case "with bystander shards and cross traffic" `Quick
            test_matrix_with_bystanders;
        ] );
    ]
