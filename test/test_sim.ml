(* Tests for the simulation library: the deterministic conflict profile
   and the concurrent workload driver (run at a small scale).  The
   timing-sensitive claims are asserted loosely: counts, not wall
   clock. *)

module Qprof = Sim.Conflict_profile.Make (Adt.Fifo_queue)
module Aprof = Sim.Conflict_profile.Make (Adt.Account)

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* ---------------- conflict profile ---------------- *)

let enq_only (i, _) = match i with Adt.Fifo_queue.Enq _ -> 1. | Adt.Fifo_queue.Deq -> 0.

let test_profile_enq_only () =
  (* Under fig 4-2, enqueues never conflict. *)
  check_float "hybrid 0" 0.
    (Qprof.op_conflict_probability ~weights:enq_only Adt.Fifo_queue.conflict_hybrid);
  (* Under fig 4-3, Enq v conflicts with Enq v' iff v <> v': probability
     1/2 over the two-value universe. *)
  check_float "fig 4-3 half" 0.5
    (Qprof.op_conflict_probability ~weights:enq_only Adt.Fifo_queue.conflict_fig_4_3);
  (* Under 2PL-RW everything conflicts. *)
  check_float "rw 1" 1.
    (Qprof.op_conflict_probability ~weights:enq_only Adt.Fifo_queue.conflict_rw)

let test_profile_ordering_account () =
  let p_hybrid =
    Aprof.op_conflict_probability ~weights:Aprof.uniform Adt.Account.conflict_hybrid
  in
  let p_commut =
    Aprof.op_conflict_probability ~weights:Aprof.uniform
      Adt.Account.conflict_commutativity
  in
  let p_rw =
    Aprof.op_conflict_probability ~weights:Aprof.uniform Adt.Account.conflict_rw
  in
  check_bool "hybrid < commutativity" true (p_hybrid < p_commut);
  check_bool "commutativity < rw" true (p_commut < p_rw);
  check_float "rw = 1" 1. p_rw

let test_profile_ordering_queue () =
  (* Under uniform weights the fig 4-2 and commutativity relations for the
     queue are incomparable (concurrent Deqs conflict under fig 4-2 but not
     under commutativity, and vice versa for Enq-before-Deq), so the strict
     ordering only emerges for an enqueue-heavy mix.  3:1 Enq:Deq gives
     hybrid 0.219 < commutativity 0.3125 < rw 1. *)
  let weights (i, _) =
    match i with Adt.Fifo_queue.Enq _ -> 3. | Adt.Fifo_queue.Deq -> 1.
  in
  let p_hybrid =
    Qprof.op_conflict_probability ~weights Adt.Fifo_queue.conflict_hybrid
  in
  let p_commut =
    Qprof.op_conflict_probability ~weights Adt.Fifo_queue.conflict_commutativity
  in
  let p_rw = Qprof.op_conflict_probability ~weights Adt.Fifo_queue.conflict_rw in
  check_bool "hybrid < commutativity" true (p_hybrid < p_commut);
  check_bool "commutativity < rw" true (p_commut < p_rw);
  check_float "rw = 1" 1. p_rw

let test_profile_txn_monotone_in_len () =
  let weights _ = 1. in
  let p1 =
    Aprof.txn_conflict_probability ~weights ~len:1 Adt.Account.conflict_hybrid
  in
  let p3 =
    Aprof.txn_conflict_probability ~weights ~len:3 Adt.Account.conflict_hybrid
  in
  check_bool "longer transactions conflict more" true (p1 < p3);
  check_bool "probability" true (p3 >= 0. && p3 <= 1.)

let test_profile_zero_weights_rejected () =
  Alcotest.check_raises "all-zero weights"
    (Invalid_argument "Conflict_profile: weights sum to zero") (fun () ->
      ignore
        (Qprof.op_conflict_probability ~weights:(fun _ -> 0.)
           Adt.Fifo_queue.conflict_hybrid))

(* ---------------- driver ---------------- *)

let test_driver_runs_all_txns () =
  let mgr = Runtime.Manager.create () in
  let counter = Atomic.make 0 in
  let config = { Sim.Driver.domains = 3; txns_per_domain = 7; think_us = 0. } in
  let result =
    Sim.Driver.run config ~mgr (fun ~domain:_ ~seq:_ _txn -> Atomic.incr counter)
  in
  Alcotest.(check int) "bodies executed" 21 (Atomic.get counter);
  Alcotest.(check int) "all committed" 21 result.Sim.Driver.committed;
  check_bool "throughput positive" true (result.Sim.Driver.throughput > 0.)

let test_driver_passes_indices () =
  let mgr = Runtime.Manager.create () in
  let seen = Array.make 2 (-1) in
  let config = { Sim.Driver.domains = 2; txns_per_domain = 3; think_us = 0. } in
  ignore
    (Sim.Driver.run config ~mgr (fun ~domain ~seq _txn ->
         if seq = 2 then seen.(domain) <- seq));
  Alcotest.(check (array int)) "last seq seen per domain" [| 2; 2 |] seen

(* ---------------- experiments (quick scale) ---------------- *)

let quick = { Sim.Experiments.domains = 2; txns = 12; think_us = 5. }

let find_row t label =
  List.find
    (fun r -> Astring_contains.contains r.Sim.Experiments.label label)
    t.Sim.Experiments.rows

let test_exp_queue_enq_shape () =
  let t = Sim.Experiments.exp_queue_enq ~scale:quick () in
  Alcotest.(check int) "three rows" 3 (List.length t.Sim.Experiments.rows);
  let hybrid = find_row t "hybrid" in
  (* the paper's claim: enqueues never conflict under fig 4-2 *)
  Alcotest.(check int) "hybrid conflicts" 0 hybrid.Sim.Experiments.op_conflicts;
  check_float "hybrid P(conflict)" 0. hybrid.Sim.Experiments.conflict_prob;
  List.iter
    (fun r ->
      Alcotest.(check int)
        ("committed: " ^ r.Sim.Experiments.label)
        (quick.Sim.Experiments.domains * quick.Sim.Experiments.txns)
        r.Sim.Experiments.committed)
    t.Sim.Experiments.rows

let test_exp_account_shape () =
  let t = Sim.Experiments.exp_account ~scale:quick () in
  let hybrid = find_row t "hybrid" in
  let commut = find_row t "commutativity" in
  let rw = find_row t "read/write" in
  check_bool "P(conflict) ordering" true
    (hybrid.Sim.Experiments.conflict_prob < commut.Sim.Experiments.conflict_prob
    && commut.Sim.Experiments.conflict_prob < rw.Sim.Experiments.conflict_prob)

let test_exp_semiqueue_shape () =
  let t = Sim.Experiments.exp_semiqueue ~scale:quick () in
  let semi = find_row t "SemiQueue" in
  Alcotest.(check int) "semiqueue conflicts 0" 0 semi.Sim.Experiments.op_conflicts

let () =
  Alcotest.run "sim"
    [
      ( "conflict-profile",
        [
          Alcotest.test_case "enq-only" `Quick test_profile_enq_only;
          Alcotest.test_case "account ordering" `Quick test_profile_ordering_account;
          Alcotest.test_case "queue ordering (enq-heavy)" `Quick
            test_profile_ordering_queue;
          Alcotest.test_case "txn length monotone" `Quick test_profile_txn_monotone_in_len;
          Alcotest.test_case "zero weights" `Quick test_profile_zero_weights_rejected;
        ] );
      ( "driver",
        [
          Alcotest.test_case "runs all transactions" `Quick test_driver_runs_all_txns;
          Alcotest.test_case "passes indices" `Quick test_driver_passes_indices;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "queue-enq shape" `Slow test_exp_queue_enq_shape;
          Alcotest.test_case "account shape" `Slow test_exp_account_shape;
          Alcotest.test_case "semiqueue shape" `Slow test_exp_semiqueue_shape;
        ] );
    ]
